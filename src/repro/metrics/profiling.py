"""Lightweight wall-clock timing hooks for the simulation engine.

The bench harness (``python -m repro bench``) wraps each phase in a
:class:`Timer` / :class:`Profiler` section and derives throughput rates
from the recorded seconds and event counts.  Kept dependency-free and
cheap enough to leave enabled in experiment code.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += perf_counter() - self._started
        self._started = None


@dataclass
class Profiler:
    """Named timing sections with event counts and derived rates."""

    seconds: dict[str, float] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        """Time a block under ``name`` (accumulates across entries)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - started)

    def add(self, name: str, seconds: float, events: int = 0) -> None:
        """Record time (and optionally an event count) for a section."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        if events:
            self.events[name] = self.events.get(name, 0) + events

    def count(self, name: str, events: int) -> None:
        """Add events to a section without adding time."""
        self.events[name] = self.events.get(name, 0) + events

    def rate(self, name: str) -> float:
        """Events per second for a section (0 when untimed)."""
        seconds = self.seconds.get(name, 0.0)
        if seconds <= 0.0:
            return 0.0
        return self.events.get(name, 0) / seconds

    def as_dict(self) -> dict:
        """JSON-ready summary: per-section seconds, events, rates."""
        return {
            name: {
                "seconds": round(self.seconds[name], 6),
                "events": self.events.get(name, 0),
                "per_second": round(self.rate(name), 1),
            }
            for name in self.seconds
        }
