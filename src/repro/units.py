"""Address-space units and helpers shared across the whole library.

The simulator models memory at base-page (4 KiB) granularity.  Physical
memory is a flat array of *frames* addressed by page frame number (PFN)
and virtual memory is addressed by virtual page number (VPN).  All sizes
that cross module boundaries are expressed in base pages unless a name
says otherwise (``*_bytes``).
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB

# x86-64 transparent huge page: 2 MiB = 512 base pages = buddy order 9.
HUGE_ORDER = 9
HUGE_PAGES = 1 << HUGE_ORDER
HUGE_SIZE = HUGE_PAGES * PAGE_SIZE

# Linux default MAX_ORDER is 11 (orders 0..10 usable), i.e. the buddy
# allocator tracks aligned free blocks of up to 4 MiB.
DEFAULT_MAX_ORDER = 10

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def pages(n_bytes: int) -> int:
    """Number of base pages needed to back ``n_bytes`` (rounded up)."""
    return -(-n_bytes // PAGE_SIZE)


def bytes_of(n_pages: int) -> int:
    """Byte size of ``n_pages`` base pages."""
    return n_pages * PAGE_SIZE


def align_down(value: int, alignment: int) -> int:
    """Largest multiple of ``alignment`` that is <= ``value``."""
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` that is >= ``value``."""
    return align_down(value + alignment - 1, alignment)


def is_aligned(value: int, alignment: int) -> bool:
    """True when ``value`` is a multiple of ``alignment``."""
    return value % alignment == 0


def order_pages(order: int) -> int:
    """Pages in a buddy block of the given order."""
    return 1 << order


def order_for_pages(n_pages: int) -> int:
    """Smallest buddy order whose block covers ``n_pages`` pages."""
    if n_pages <= 0:
        raise ValueError(f"n_pages must be positive, got {n_pages}")
    return (n_pages - 1).bit_length()


def human_pages(n_pages: int) -> str:
    """Render a page count as a human-readable byte size (e.g. '2.0M')."""
    n = n_pages * PAGE_SIZE
    for suffix, unit in (("G", GIB), ("M", MIB), ("K", KIB)):
        if n >= unit:
            return f"{n / unit:.1f}{suffix}"
    return f"{n}B"
