"""Extension experiment: two VMs consolidated on one host.

Not a paper figure — it extends Fig. 10's multi-programmed story to the
virtualization level: two VMs boot on one host and fault their guest
workloads *concurrently*, so the host-side placement policy decides
whether the VMs' backings interleave.  With a CA host, next-fit
placement keeps each VM's gPA→hPA mappings in disjoint regions and the
guests' 2D contiguity survives consolidation; with a THP host the two
backings shuffle together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.units import order_pages
from repro.virt.hypervisor import VirtualMachine


@dataclass
class ExtMultiVmResult:
    """Final 2D contiguity per (host policy, vm index)."""

    mappings_99: dict[tuple[str, int], int] = field(default_factory=dict)
    coverage_32: dict[tuple[str, int], float] = field(default_factory=dict)

    def worst_mappings(self, policy: str) -> int:
        return max(
            v for (p, _), v in self.mappings_99.items() if p == policy
        )

    def report(self) -> str:
        rows = []
        for (policy, vm_idx), maps in sorted(self.mappings_99.items()):
            rows.append(
                (policy, vm_idx, common.pct(self.coverage_32[(policy, vm_idx)]),
                 maps)
            )
        return common.format_table(
            ("host policy", "vm", "cov32(final)", "maps99(final)"), rows
        )


def run_cell_two_vms(
    *,
    host_policy: str,
    workload_names: tuple[str, ...],
    scale: ScaleProfile,
) -> list[tuple[int, float]]:
    """Boot two half-machine VMs on one host; interleave their runs."""
    from repro.sim.multiprog import guest_instances, interleave

    host = common.native_machine(host_policy, scale)
    top = order_pages(host.config.max_order)
    vm_pages = sum(host.config.node_pages) // 2
    vm_pages -= vm_pages % top
    vms = [
        VirtualMachine(host, vm_pages, host_policy, name=f"vm{i}")
        for i in range(2)
    ]
    workloads = [
        common.workload(workload_names[i], scale, seed=i) for i in range(2)
    ]
    instances = guest_instances(vms, workloads)
    interleave(instances, sample_every=64)
    return [
        (instance.final.mappings_99, instance.final.coverage_32)
        for instance in instances
    ]


def plan(
    scale: ScaleProfile | None = None,
    host_policies: tuple[str, ...] = ("thp", "ca"),
    workload_names: tuple[str, str] = ("svm", "pagerank"),
) -> Plan:
    """One consolidated-host cell per host policy."""
    scale = scale or common.QUICK_SCALE
    cells = [
        cell(
            "repro.experiments.ext_multivm:run_cell_two_vms",
            host_policy=policy,
            workload_names=tuple(workload_names),
            scale=scale,
        )
        for policy in host_policies
    ]

    def assemble(results) -> ExtMultiVmResult:
        out = ExtMultiVmResult()
        for policy, finals in zip(host_policies, results):
            for i, (maps, cov) in enumerate(finals):
                out.mappings_99[(policy, i)] = maps
                out.coverage_32[(policy, i)] = cov
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    host_policies: tuple[str, ...] = ("thp", "ca"),
    workload_names: tuple[str, str] = ("svm", "pagerank"),
    executor: Executor | None = None,
) -> ExtMultiVmResult:
    """Boot two half-machine VMs per host policy; interleave their runs."""
    return plan(scale, host_policies, workload_names).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
