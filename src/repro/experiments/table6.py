"""Table VI: memory bloat relative to 4K demand paging.

Bloat = frames allocated beyond what the workload actually touched.
Pure 4K demand paging is the zero reference; THP bloats at huge-page
tails; Ingens bloats less than THP (it only promotes utilized regions);
CA behaves like THP (it does not change page-size decisions); eager
paging backs whole VMAs — its arena over-reservation makes hashjoin's
bloat enormous (~47% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import RunOptions
from repro.units import MIB, PAGE_SIZE


@dataclass
class Table6Result:
    """Bloat pages per (workload, policy)."""

    bloat: dict[tuple[str, str], int] = field(default_factory=dict)
    touched: dict[str, int] = field(default_factory=dict)

    def bloat_fraction(self, workload: str, policy: str) -> float:
        return self.bloat[(workload, policy)] / max(1, self.touched[workload])

    def report(self) -> str:
        workloads = sorted({wl for wl, _ in self.bloat})
        policies = sorted({p for _, p in self.bloat})
        rows = []
        for wl in workloads:
            cells = [wl]
            for p in policies:
                mb = self.bloat[(wl, p)] * PAGE_SIZE / MIB
                cells.append(
                    f"{mb:.1f}MB ({common.pct(self.bloat_fraction(wl, p))})"
                )
            rows.append(cells)
        return common.format_table(["workload"] + list(policies), rows)


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ingens", "ca", "eager"),
) -> Plan:
    """Declare the native-grid cells (shared with fig 11 / table V).

    Bloat and touched counts are recorded in the result before process
    teardown, so the canonical grid cell serves this table unchanged.
    """
    scale = scale or common.QUICK_SCALE
    keys = [(name, policy) for policy in policies for name in workloads]
    cells = [
        cell(
            "repro.experiments.common:run_cell_native",
            workload=name,
            policy=policy,
            scale=scale,
            options=RunOptions(sample_every=None),
        )
        for name, policy in keys
    ]

    def assemble(results) -> Table6Result:
        out = Table6Result()
        for (name, policy), r in zip(keys, results):
            out.bloat[(name, policy)] = r.bloat_pages
            out.touched[name] = r.touched_pages
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ingens", "ca", "eager"),
    executor: Executor | None = None,
) -> Table6Result:
    """Measure resident-minus-touched per configuration."""
    return plan(scale, workloads, policies).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
