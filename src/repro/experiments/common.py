"""Shared experiment plumbing: machine/VM builders, tables, geomeans."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.sim.config import (
    DEFAULT_SCALE,
    QUICK_SCALE,
    TEST_SCALE,
    HardwareConfig,
    ScaleProfile,
    SystemConfig,
)
from repro.sim.machine import Machine, build_machine
from repro.virt.hypervisor import VirtualMachine
from repro.units import order_pages
from repro.workloads import make_workload
from repro.workloads.base import Workload

#: Workload order used everywhere (Table III order).
SUITE = ("svm", "pagerank", "hashjoin", "xsbench", "bt")
#: The paper's allocation baselines in Fig. 7/8 order.
CONTIGUITY_POLICIES = ("thp", "ingens", "eager", "ranger", "ca", "ideal")


def system_config(scale: ScaleProfile, **overrides) -> SystemConfig:
    """Machine shape for a scale profile."""
    return SystemConfig.from_scale(scale, **overrides)


def native_machine(policy: str, scale: ScaleProfile, **overrides) -> Machine:
    """An aged native machine running the given policy."""
    return build_machine(policy, system_config(scale, **overrides))


def virtual_machine(
    host_policy: str,
    guest_policy: str,
    scale: ScaleProfile,
    **overrides,
) -> VirtualMachine:
    """A machine-sized VM (the paper gives the VM all host memory)."""
    host = native_machine(host_policy, scale, **overrides)
    guest_pages = sum(host.config.node_pages)
    guest_pages -= guest_pages % order_pages(host.config.max_order)
    return VirtualMachine(host, guest_pages, guest_policy)


def workload(name: str, scale: ScaleProfile, seed: int = 0) -> Workload:
    """Instantiate a suite workload."""
    return make_workload(name, scale, seed=seed)


def geomean(values: Iterable[float], floor: float = 1e-9) -> float:
    """Geometric mean with a zero floor."""
    vals = [max(float(v), floor) for v in values]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (the experiment report format)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def pct(x: float) -> str:
    """Percentage cell."""
    return f"{100 * x:.1f}%"


__all__ = [
    "CONTIGUITY_POLICIES",
    "DEFAULT_SCALE",
    "QUICK_SCALE",
    "SUITE",
    "TEST_SCALE",
    "HardwareConfig",
    "format_table",
    "geomean",
    "native_machine",
    "pct",
    "system_config",
    "virtual_machine",
    "workload",
]
