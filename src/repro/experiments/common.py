"""Shared experiment plumbing: machine/VM builders, cells, tables.

Besides the machine/workload builders, this module hosts the generic
**run cells** experiments declare to the job-graph executor
(:mod:`repro.sim.jobs`): module-level functions whose keyword arguments
are simple hashable values, so each cell can run in a worker process
and memoize in the content-addressed run cache.  Sibling experiments
that sweep the same grid share cells verbatim — fig 11 / table V /
table VI reuse :func:`run_cell_native`, and fig 13 / fig 14 / table VII
reuse :func:`run_cell_virt_sim_chain`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.sim import transport

from repro.sim.config import (
    DEFAULT_SCALE,
    QUICK_SCALE,
    TEST_SCALE,
    HardwareConfig,
    ScaleProfile,
    SystemConfig,
)
from repro.sim.jobs import Cell, cell
from repro.sim.machine import Machine, build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.virt.hypervisor import VirtualMachine
from repro.units import order_pages
from repro.workloads import make_workload
from repro.workloads.base import Workload

#: Workload order used everywhere (Table III order).
SUITE = ("svm", "pagerank", "hashjoin", "xsbench", "bt")
#: The paper's allocation baselines in Fig. 7/8 order.
CONTIGUITY_POLICIES = ("thp", "ingens", "eager", "ranger", "ca", "ideal")


def system_config(scale: ScaleProfile, **overrides) -> SystemConfig:
    """Machine shape for a scale profile."""
    return SystemConfig.from_scale(scale, **overrides)


def native_machine(policy: str, scale: ScaleProfile, **overrides) -> Machine:
    """An aged native machine running the given policy."""
    return build_machine(policy, system_config(scale, **overrides))


def virtual_machine(
    host_policy: str,
    guest_policy: str,
    scale: ScaleProfile,
    **overrides,
) -> VirtualMachine:
    """A machine-sized VM (the paper gives the VM all host memory)."""
    host = native_machine(host_policy, scale, **overrides)
    guest_pages = sum(host.config.node_pages)
    guest_pages -= guest_pages % order_pages(host.config.max_order)
    return VirtualMachine(host, guest_pages, guest_policy)


def workload(name: str, scale: ScaleProfile, seed: int = 0) -> Workload:
    """Instantiate a suite workload."""
    return make_workload(name, scale, seed=seed)


def geomean(values: Iterable[float], floor: float = 1e-9) -> float:
    """Geometric mean with a zero floor."""
    vals = [max(float(v), floor) for v in values]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (the experiment report format)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def pct(x: float) -> str:
    """Percentage cell."""
    return f"{100 * x:.1f}%"


# -- generic run cells ------------------------------------------------------
#
# Each cell is a pure function of its keyword arguments: machines are
# built fresh from seeded configs, so the result is deterministic and
# safe to execute in a worker process or serve from the run cache.
# Results must be picklable — cells never return live processes.


def run_cell_native(
    *,
    workload: str,
    policy: str,
    scale: ScaleProfile,
    seed: int = 0,
    options: RunOptions | None = None,
    hog: float = 0.0,
    node_pages: tuple[int, ...] | None = None,
):
    """One native run on a fresh machine; the native-grid cell.

    ``hog`` pins that fraction of memory before the run (fig 8's
    pressure sweep); ``node_pages`` overrides the machine shape (the
    NUMA-off experiments).
    """
    overrides = {} if node_pages is None else {"node_pages": tuple(node_pages)}
    machine = native_machine(policy, scale, **overrides)
    if hog:
        machine.hog(hog)
    wl = make_workload(workload, scale, seed=seed)
    result = run_native(machine, wl, options or RunOptions())
    result.process = None
    return result


def run_cell_virt_chain(
    *,
    host_policy: str,
    guest_policy: str,
    workloads: tuple[str, ...],
    scale: ScaleProfile,
    options: RunOptions | None = None,
    drop_caches: bool = True,
):
    """Consecutive runs inside one long-lived VM (fig 12 / the paper's
    no-reboot aging); returns the per-workload results in order."""
    vm = virtual_machine(host_policy, guest_policy, scale)
    results = []
    for name in workloads:
        wl = make_workload(name, scale)
        r = run_virtualized(vm, wl, options or RunOptions())
        r.process = None
        results.append(r)
        if drop_caches:
            vm.guest_kernel.drop_caches()
    return results


def run_cell_native_sim(
    *,
    workload: str,
    policy: str,
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
    force_4k: tuple[bool, ...] = (False,),
):
    """One native run plus TLB simulations of its final memory state.

    Returns one :class:`~repro.hw.mmu_sim.MmuSimResult` per entry of
    ``force_4k`` (fig 13's THP and 4K bars come from the same state
    viewed at different TLB-entry granularity).
    """
    from repro.hw.mmu_sim import MmuSimulator
    from repro.hw.translation import TranslationView

    machine = native_machine(policy, scale)
    wl = make_workload(workload, scale)
    trace = wl.trace(trace_len)
    r = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
    sims = []
    for force in force_4k:
        view = TranslationView.native(r.process, force_4k=force)
        sims.append(MmuSimulator(view, hw).run(trace, r.vma_start_vpns, workload=wl))
    machine.kernel.exit_process(r.process)
    return sims


# -- stage-checkpointed chains ----------------------------------------------
#
# An aging-VM chain can also run as a linear DAG of per-workload
# *stages*: each stage carries its payload plus the serialized VM it
# left behind, and the next stage resumes from that checkpoint.  The
# stage cells are content-addressed like any other cell (the key covers
# the whole chain prefix through the dependency specs), so an
# interrupted suite resumes from the last completed stage and the
# executor overlaps independent chains' stages.  VM state serializes
# faithfully — machines are built from seeded configs and hold no open
# resources — so the staged chain is byte-identical to the monolithic
# one (asserted by the differential tests).
#
# Checkpoints ride the RPT1 transport (:mod:`repro.sim.transport`):
# the VM's numpy columns move out-of-band and RLE/zlib-compress per
# frame, and stage k stores a *delta* against stage k-1 — unchanged
# columns become 20-byte ref frames instead of being re-written five
# times along the suite chain.  That is why stage cells depend on the
# *whole prefix* rather than just the previous stage: resuming stage k
# needs every earlier blob registered in a :class:`~repro.sim.transport.
# BufferStore` so ref frames can resolve.


@dataclass
class ChainStage:
    """One chain stage's result: payload + the VM checkpoint after it.

    ``state`` is the framed (possibly delta) VM blob — the next stage's
    starting point; ``state_digest`` is the transport's *logical* state
    digest, which is identical whether the blob was written full or as
    a delta, so tests can assert checkpoint determinism without caring
    how the bytes were framed.  ``base_digest`` names the checkpoint
    this one is a delta against (``None`` for a full blob).
    """

    payload: Any
    state: bytes
    state_digest: str
    base_digest: str | None = None


def checkpoint_vm(
    vm: VirtualMachine, prev: Sequence[ChainStage] = ()
) -> tuple[bytes, str]:
    """Serialize a VM into a chain checkpoint ``(blob, logical digest)``.

    With ``prev`` (the chain prefix, oldest first) the blob is a delta
    against the last stage's checkpoint: columns whose canonical
    encoding is unchanged become ref frames into the prefix blobs.
    """
    if prev:
        store = transport.BufferStore()
        for stage in prev:
            store.add_blob(stage.state)
        blob = transport.dumps(vm, store=store, base=prev[-1].state_digest)
    else:
        blob = transport.dumps(vm)
    return blob, transport.blob_digest(blob)


def resume_vm(*prev: ChainStage) -> VirtualMachine:
    """Rehydrate the VM the last of ``prev`` checkpointed.

    Every stage of the prefix must be supplied (oldest first): a delta
    blob's ref frames may point into any earlier stage's checkpoint.
    """
    store = transport.BufferStore()
    for stage in prev:
        store.add_blob(stage.state)
    return transport.loads(prev[-1].state, store=store)


def run_cell_virt_sim_stage(
    *prev: ChainStage,
    host_policy: str,
    guest_policy: str,
    workload: str,
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
    force_4k: tuple[bool, ...] = (False,),
) -> ChainStage:
    """One workload step of :func:`run_cell_virt_sim_chain`.

    The first stage (no ``prev``) builds the VM fresh; later stages
    receive the whole chain prefix and resume the last checkpoint.  The
    payload is the same per-workload sim list the monolithic chain
    appends.
    """
    from repro.hw.mmu_sim import MmuSimulator
    from repro.hw.translation import TranslationView

    vm = resume_vm(*prev) if prev else virtual_machine(
        host_policy, guest_policy, scale
    )
    wl = make_workload(workload, scale)
    trace = wl.trace(trace_len)
    r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
    sims = []
    for force in force_4k:
        view = TranslationView.virtualized(vm, r.process, force_4k=force)
        sims.append(
            MmuSimulator(view, hw).run(trace, r.vma_start_vpns, workload=wl)
        )
    vm.guest_exit_process(r.process)
    vm.guest_kernel.drop_caches()
    blob, digest = checkpoint_vm(vm, prev)
    return ChainStage(
        payload=sims,
        state=blob,
        state_digest=digest,
        base_digest=prev[-1].state_digest if prev else None,
    )


def virt_sim_stage_cells(
    *,
    host_policy: str,
    guest_policy: str,
    workloads: tuple[str, ...],
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
    force_4k: tuple[bool, ...] = (False,),
) -> list[Cell]:
    """The staged form of a virt-sim chain: one cell per workload, each
    depending on the previous stage.  Experiments that build this chain
    with identical parameters (fig 13 / fig 14 / Table VII's CA+CA
    chain) share every stage cell through the run cache.

    Each stage depends on its *entire* prefix (not just the previous
    stage): delta checkpoints hold ref frames that may resolve into any
    earlier stage's blob, so a resumed stage needs all of them.  The
    content key already covered the full prefix recursively, so keys
    and cache sharing are unaffected."""
    out: list[Cell] = []
    for name in workloads:
        c = cell(
            "repro.experiments.common:run_cell_virt_sim_stage",
            deps=tuple(out),
            host_policy=host_policy,
            guest_policy=guest_policy,
            workload=name,
            scale=scale,
            hw=hw,
            trace_len=trace_len,
            force_4k=force_4k,
        )
        out.append(c)
    return out


def stage_payloads(results: Sequence[ChainStage]) -> list[Any]:
    """Unwrap a staged chain's results into the monolithic chain shape."""
    return [stage.payload for stage in results]


def run_cell_virt_sim_chain(
    *,
    host_policy: str,
    guest_policy: str,
    workloads: tuple[str, ...],
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
    force_4k: tuple[bool, ...] = (False,),
):
    """One aging VM runs the workloads consecutively; each final memory
    state is TLB-simulated before the next workload starts.

    Returns, per workload, one ``MmuSimResult`` per ``force_4k`` entry.
    The CA+CA instance of this chain carries fig 13's scheme bars,
    fig 14's SpOT breakdown *and* Table VII's counters — one simulation
    serves all three experiments through the run cache.
    """
    from repro.hw.mmu_sim import MmuSimulator
    from repro.hw.translation import TranslationView

    vm = virtual_machine(host_policy, guest_policy, scale)
    out = []
    for name in workloads:
        wl = make_workload(name, scale)
        trace = wl.trace(trace_len)
        r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
        sims = []
        for force in force_4k:
            view = TranslationView.virtualized(vm, r.process, force_4k=force)
            sims.append(
                MmuSimulator(view, hw).run(trace, r.vma_start_vpns, workload=wl)
            )
        out.append(sims)
        vm.guest_exit_process(r.process)
        vm.guest_kernel.drop_caches()
    return out


__all__ = [
    "CONTIGUITY_POLICIES",
    "DEFAULT_SCALE",
    "QUICK_SCALE",
    "SUITE",
    "TEST_SCALE",
    "ChainStage",
    "HardwareConfig",
    "checkpoint_vm",
    "format_table",
    "geomean",
    "native_machine",
    "pct",
    "resume_vm",
    "run_cell_native",
    "run_cell_native_sim",
    "run_cell_virt_chain",
    "run_cell_virt_sim_chain",
    "run_cell_virt_sim_stage",
    "stage_payloads",
    "system_config",
    "virt_sim_stage_cells",
    "virtual_machine",
    "workload",
]
