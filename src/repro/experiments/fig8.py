"""Fig. 8: contiguity under external fragmentation (the hog sweep).

The hog microbenchmark pins 0% → 50% of memory at >2 MiB granularity,
then each workload runs on the fragmented single-node machine (the
paper turns NUMA off for this experiment).  Reported: geomean coverage
of the 32/128 largest mappings and #mappings for 99%, across the suite
minus BT (whose footprint does not fit the hogged machine).

Paper shapes: THP/Ingens are indifferent (plenty of free 2 MiB pages
remain); eager paging degrades sharply (it needs big *aligned* blocks);
CA stays near ideal by harvesting unaligned free contiguity; Ranger is
nearly immune (it migrates after allocation) and wins the 32-mapping
metric, while CA matches it at 128 mappings and 99% coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.results import RunResult
from repro.sim.runner import RunOptions

#: Memory-pressure levels of the paper's sweep.
PRESSURES = (0.0, 0.10, 0.25, 0.50)
#: BT does not fit the hogged machine (167 GB footprint).
WORKLOADS = ("svm", "pagerank", "hashjoin", "xsbench")


@dataclass
class Fig8Result:
    """Geomean contiguity per (pressure, policy)."""

    runs: dict[tuple[float, str, str], RunResult] = field(default_factory=dict)

    def geomean_row(self, pressure: float, policy: str) -> tuple[float, float, float]:
        keys = [k for k in self.runs if k[0] == pressure and k[1] == policy]
        return (
            common.geomean(self.runs[k].average.coverage_32 for k in keys),
            common.geomean(self.runs[k].average.coverage_128 for k in keys),
            common.geomean(self.runs[k].average.mappings_99 for k in keys),
        )

    def report(self) -> str:
        rows = []
        pressures = sorted({k[0] for k in self.runs})
        policies = sorted({k[1] for k in self.runs})
        for pressure in pressures:
            for policy in policies:
                c32, c128, m99 = self.geomean_row(pressure, policy)
                rows.append(
                    (f"hog-{int(100 * pressure)}", policy,
                     common.pct(c32), common.pct(c128), f"{m99:.0f}")
                )
        return common.format_table(
            ("pressure", "policy", "cov32", "cov128", "maps99"), rows
        )


def plan(
    scale: ScaleProfile | None = None,
    pressures: tuple[float, ...] = PRESSURES,
    policies: tuple[str, ...] = common.CONTIGUITY_POLICIES,
    workloads: tuple[str, ...] = WORKLOADS,
) -> Plan:
    """Declare the sweep's cells on single-node (NUMA-off) machines."""
    scale = scale or common.QUICK_SCALE
    # NUMA off: one node with the whole machine's memory (paper §VI-A).
    node_pages = (sum(scale.node_pages()),)
    keys = [
        (pressure, policy, name)
        for pressure in pressures
        for policy in policies
        for name in workloads
    ]
    cells = [
        cell(
            "repro.experiments.common:run_cell_native",
            workload=name,
            policy=policy,
            scale=scale,
            options=RunOptions(sample_every=32),
            hog=pressure,
            node_pages=node_pages,
        )
        for pressure, policy, name in keys
    ]

    def assemble(results) -> Fig8Result:
        out = Fig8Result()
        for key, r in zip(keys, results):
            out.runs[key] = r
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    pressures: tuple[float, ...] = PRESSURES,
    policies: tuple[str, ...] = common.CONTIGUITY_POLICIES,
    workloads: tuple[str, ...] = WORKLOADS,
    executor: Executor | None = None,
) -> Fig8Result:
    """Run the sweep (optionally parallel/cached via ``executor``)."""
    return plan(scale, pressures, policies, workloads).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
