"""Serialization of experiment results to plain JSON-able structures.

Result objects are dataclasses holding dataclasses, numpy scalars and
dicts keyed by tuples (``(workload, policy)``); this module flattens
all of that so results can be archived next to EXPERIMENTS.md and
diffed across runs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

#: Separator used to flatten tuple keys ("svm|ca").
KEY_SEP = "|"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert a result object into JSON-compatible data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    # Fall back to the object's public attributes (non-dataclass results).
    public = {
        name: to_jsonable(value)
        for name, value in vars(obj).items()
        if not name.startswith("_")
    }
    if public:
        return public
    return repr(obj)


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return KEY_SEP.join(str(part) for part in key)
    return str(key)


def save_result(path: str | Path, name: str, result: Any, **meta) -> Path:
    """Write one experiment's result (with metadata) as JSON."""
    path = Path(path)
    payload = {
        "experiment": name,
        "meta": meta,
        "result": to_jsonable(result),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_result(path: str | Path) -> dict:
    """Read back a saved result payload."""
    return json.loads(Path(path).read_text())
