"""Extension experiment: running vHC instead of just counting it.

The paper rejects virtualized Hybrid Coalescing structurally (Table I:
~38x more entries than ranges under CA) without simulating it.  This
extension runs the mechanism: the same CA+CA memory state and trace are
fed to (i) a conventional TLB + SpOT, and (ii) a hybrid anchor-
coalescing TLB at the OS-chosen anchor distance.

What it shows at this scale: anchored coalescing *does* beat the plain
TLB (its entries reach far beyond 2 MiB), and its residual miss rate
lands in SpOT's neighbourhood — but each anchor entry covers only an
aligned ``d``-slice of a run, so covering a footprint costs many more
entries than ranges/offsets (the Table I ratio), and the sweep over
smaller anchor distances (``distance_sweep``) shows reach collapsing
as alignment slices tighten.  At the paper's 100+ GB footprints the
entry pressure exceeds any real TLB, which is the argument for
alignment-free schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.hw.hybrid_coalescing import anchor_distance_for
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.hw.vhc import simulate_vhc
from repro.sim.config import HardwareConfig, ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import RunOptions, run_virtualized

TRACE_LEN = 150_000


@dataclass
class VhcRow:
    workload: str
    anchor_distance: int
    baseline_miss_rate: float
    vhc_miss_rate: float
    spot_exposed_rate: float  # misses SpOT could not hide, per access
    avg_pages_per_entry: float


@dataclass
class ExtVhcResult:
    rows: dict[str, VhcRow] = field(default_factory=dict)

    def report(self) -> str:
        table = [
            (
                r.workload,
                r.anchor_distance,
                f"{r.baseline_miss_rate:.3%}",
                f"{r.vhc_miss_rate:.3%}",
                f"{r.spot_exposed_rate:.3%}",
                f"{r.avg_pages_per_entry:.1f}",
            )
            for r in self.rows.values()
        ]
        return common.format_table(
            ("workload", "anchor d", "TLB miss", "vHC miss",
             "SpOT exposed", "pages/entry"),
            table,
        )


def _vhc_step(vm, name: str, scale: ScaleProfile, hw: HardwareConfig,
              trace_len: int) -> VhcRow:
    """One workload on an aging CA+CA VM; costs both organisations."""
    wl = common.workload(name, scale)
    r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
    view = TranslationView.virtualized(vm, r.process)
    trace = wl.trace(trace_len)
    baseline = MmuSimulator(view, hw).run(trace, r.vma_start_vpns, workload=wl)
    resolved = view.resolve(trace, r.vma_start_vpns)
    distance = anchor_distance_for(
        [int(x) for x in (view.ends - view.starts)]
    )
    # The anchor TLB replaces the L2 STLB: give it the same budget.
    vhc = simulate_vhc(resolved, distance, entries=hw.l2_entries,
                       ways=hw.l2_ways)
    row = VhcRow(
        workload=name,
        anchor_distance=distance,
        baseline_miss_rate=baseline.miss_rate,
        vhc_miss_rate=vhc.miss_rate,
        spot_exposed_rate=(
            baseline.spot_no_prediction + baseline.spot_mispredict
        ) / max(1, baseline.accesses),
        avg_pages_per_entry=vhc.avg_pages_per_entry,
    )
    vm.guest_exit_process(r.process)
    vm.guest_kernel.drop_caches()
    return row


def run_cell_vhc_chain(
    *,
    workloads: tuple[str, ...],
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
) -> list[VhcRow]:
    """One aging CA+CA VM; per workload, cost both TLB organisations."""
    vm = common.virtual_machine("ca", "ca", scale)
    return [_vhc_step(vm, name, scale, hw, trace_len) for name in workloads]


def run_cell_vhc_stage(
    *prev: common.ChainStage,
    workload: str,
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
) -> common.ChainStage:
    """One checkpointed workload step of the vHC chain.

    Receives the whole chain prefix so delta checkpoints can resolve
    ref frames into any earlier stage's blob."""
    vm = common.resume_vm(*prev) if prev else (
        common.virtual_machine("ca", "ca", scale)
    )
    row = _vhc_step(vm, workload, scale, hw, trace_len)
    blob, digest = common.checkpoint_vm(vm, prev)
    return common.ChainStage(
        payload=row,
        state=blob,
        state_digest=digest,
        base_digest=prev[-1].state_digest if prev else None,
    )


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    staged: bool = True,
) -> Plan:
    """The vHC chain — the VM ages across the suite; per-workload
    checkpointed stages by default, one monolithic cell with
    ``staged=False``."""
    scale = scale or common.QUICK_SCALE
    hw = hw or HardwareConfig()
    if staged:
        cells_out = []
        for name in workloads:
            c = cell(
                "repro.experiments.ext_vhc:run_cell_vhc_stage",
                deps=tuple(cells_out),
                workload=name,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
            cells_out.append(c)
    else:
        cells_out = [
            cell(
                "repro.experiments.ext_vhc:run_cell_vhc_chain",
                workloads=tuple(workloads),
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
        ]

    def assemble(results) -> ExtVhcResult:
        rows = common.stage_payloads(results) if staged else results[0]
        out = ExtVhcResult()
        for row in rows:
            out.rows[row.workload] = row
        return out

    return Plan(cells_out, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    executor: Executor | None = None,
) -> ExtVhcResult:
    """Same CA+CA states: conventional TLB + SpOT vs anchor TLB."""
    return plan(scale, workloads, hw, trace_len).run(executor)


def distance_sweep(
    scale: ScaleProfile | None = None,
    workload_name: str = "xsbench",
    distances: tuple[int, ...] = (64, 512, 4096),
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
) -> dict[int, float]:
    """vHC miss rate vs anchor distance on one CA+CA state."""
    scale = scale or common.QUICK_SCALE
    hw = hw or HardwareConfig()
    vm = common.virtual_machine("ca", "ca", scale)
    wl = common.workload(workload_name, scale)
    r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
    view = TranslationView.virtualized(vm, r.process)
    resolved = view.resolve(wl.trace(trace_len), r.vma_start_vpns)
    out = {
        d: simulate_vhc(resolved, d, entries=hw.l2_entries, ways=hw.l2_ways).miss_rate
        for d in distances
    }
    vm.guest_exit_process(r.process)
    return out


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
