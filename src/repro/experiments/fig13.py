"""Fig. 13: execution-time overheads of address translation.

Per workload, the full bar set:

- native 4K and native THP (performance-counter analogue: TLB sim on a
  native memory state),
- virtualized 4K+4K and THP+THP (nested paging),
- SpOT, vRMM and DS, all emulated on the CA+CA virtualized state, with
  the Table IV linear model on top.

Paper shapes: nested THP ~16.5% on average (up to ~28% for SVM); SpOT
cuts it to ~0.9%; vRMM < 0.1%; DS ~0; SpOT benefits least where CA
contiguity is stressed (BT's NUMA spill) or misses are irregular
(SVM's out-of-mapping tail, hashjoin's random probes).

The 4K bars come from the same memory state viewed at 4 KiB TLB-entry
granularity.  The trace is page-level, so 4K bars overstate absolute
overhead (every page touch is a distinct 4K entry); they are reported
for shape only — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimResult, MmuSimulator
from repro.hw.translation import TranslationView
from repro.hw.walk import WalkLatencyModel
from repro.metrics.perf_model import WalkCosts
from repro.sim.config import HardwareConfig, ScaleProfile
from repro.sim.runner import RunOptions, run_native, run_virtualized

#: Default trace length per configuration.
TRACE_LEN = 200_000

#: Bar names in figure order.
BARS = ("4K", "THP", "4K+4K", "THP+THP", "SpOT", "vRMM", "DS")


@dataclass
class Fig13Result:
    """Overheads per (workload, bar) plus raw sim counters."""

    overheads: dict[tuple[str, str], float] = field(default_factory=dict)
    sims: dict[tuple[str, str], MmuSimResult] = field(default_factory=dict)
    costs: WalkCosts = field(default_factory=WalkCosts)

    def mean(self, bar: str) -> float:
        vals = [v for (wl, b), v in self.overheads.items() if b == bar]
        return sum(vals) / len(vals)

    def report(self) -> str:
        workloads = sorted({wl for wl, _ in self.overheads})
        rows = []
        for wl in workloads:
            rows.append(
                [wl] + [common.pct(self.overheads[(wl, b)]) for b in BARS]
            )
        rows.append(["mean"] + [common.pct(self.mean(b)) for b in BARS])
        return common.format_table(["workload"] + list(BARS), rows)

    def chart(self) -> str:
        """The figure itself: per-workload bar panels (log scale)."""
        from repro.experiments.charts import grouped_bar_chart

        workloads = sorted({wl for wl, _ in self.overheads})
        series = {
            bar: [self.overheads[(wl, bar)] for wl in workloads]
            for bar in BARS
        }
        return grouped_bar_chart(
            workloads, series,
            title="Fig 13: translation overhead vs T_ideal", log=True,
        )


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
) -> Fig13Result:
    """Build memory states, run the TLB sims, apply the Table IV model."""
    scale = scale or common.DEFAULT_SCALE
    hw = hw or HardwareConfig()
    costs = WalkLatencyModel().walk_costs()
    result = Fig13Result(costs=costs)

    thp_vm = common.virtual_machine("thp", "thp", scale)
    ca_vm = common.virtual_machine("ca", "ca", scale)
    options = RunOptions(sample_every=None, exit_after=False)

    for name in workloads:
        wl = common.workload(name, scale)
        trace = wl.trace(trace_len)

        # Native state (default THP machine).
        native = common.native_machine("thp", scale)
        rn = run_native(native, wl, options)
        for bar, force_4k in (("THP", False), ("4K", True)):
            view = TranslationView.native(rn.process, force_4k=force_4k)
            sim = MmuSimulator(view, hw).run(trace, rn.vma_start_vpns, workload=wl)
            result.sims[(name, bar)] = sim
            result.overheads[(name, bar)] = sim.overheads(costs)["paging"]
        native.kernel.exit_process(rn.process)

        # Virtualized default state.
        rv = run_virtualized(thp_vm, wl, options)
        for bar, force_4k in (("THP+THP", False), ("4K+4K", True)):
            view = TranslationView.virtualized(thp_vm, rv.process, force_4k=force_4k)
            sim = MmuSimulator(view, hw).run(trace, rv.vma_start_vpns, workload=wl)
            result.sims[(name, bar)] = sim
            result.overheads[(name, bar)] = sim.overheads(costs)["paging"]
        thp_vm.guest_exit_process(rv.process)
        thp_vm.guest_kernel.drop_caches()

        # CA+CA state: the schemes under test.
        rc = run_virtualized(ca_vm, wl, options)
        view = TranslationView.virtualized(ca_vm, rc.process)
        sim = MmuSimulator(view, hw).run(trace, rc.vma_start_vpns, workload=wl)
        schemes = sim.overheads(costs)
        result.sims[(name, "SpOT")] = sim
        result.overheads[(name, "SpOT")] = schemes["spot"]
        result.overheads[(name, "vRMM")] = schemes["vrmm"]
        result.overheads[(name, "DS")] = schemes["ds"]
        ca_vm.guest_exit_process(rc.process)
        ca_vm.guest_kernel.drop_caches()

    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(result.report())
    print()
    print(result.chart())


if __name__ == "__main__":  # pragma: no cover
    main()
