"""Fig. 13: execution-time overheads of address translation.

Per workload, the full bar set:

- native 4K and native THP (performance-counter analogue: TLB sim on a
  native memory state),
- virtualized 4K+4K and THP+THP (nested paging),
- SpOT, vRMM and DS, all emulated on the CA+CA virtualized state, with
  the Table IV linear model on top.

Paper shapes: nested THP ~16.5% on average (up to ~28% for SVM); SpOT
cuts it to ~0.9%; vRMM < 0.1%; DS ~0; SpOT benefits least where CA
contiguity is stressed (BT's NUMA spill) or misses are irregular
(SVM's out-of-mapping tail, hashjoin's random probes).

The 4K bars come from the same memory state viewed at 4 KiB TLB-entry
granularity.  The trace is page-level, so 4K bars overstate absolute
overhead (every page touch is a distinct 4K entry); they are reported
for shape only — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimResult
from repro.hw.walk import WalkLatencyModel
from repro.metrics.perf_model import WalkCosts
from repro.sim.config import HardwareConfig, ScaleProfile
from repro.sim.jobs import Executor, Plan, cell

#: Default trace length per configuration.
TRACE_LEN = 200_000

#: Bar names in figure order.  The last three extend the paper's
#: comparison with schemes it never measured: the run-coalescing TLB,
#: Utopia's hybrid mappings, and the segmentation baseline — all
#: emulated on the same CA+CA state and miss stream as SpOT/vRMM/DS.
BARS = (
    "4K", "THP", "4K+4K", "THP+THP",
    "SpOT", "vRMM", "DS", "cTLB", "Utopia", "Seg",
)


@dataclass
class Fig13Result:
    """Overheads per (workload, bar) plus raw sim counters."""

    overheads: dict[tuple[str, str], float] = field(default_factory=dict)
    sims: dict[tuple[str, str], MmuSimResult] = field(default_factory=dict)
    costs: WalkCosts = field(default_factory=WalkCosts)

    def mean(self, bar: str) -> float:
        vals = [v for (wl, b), v in self.overheads.items() if b == bar]
        return sum(vals) / len(vals)

    def report(self) -> str:
        workloads = sorted({wl for wl, _ in self.overheads})
        rows = []
        for wl in workloads:
            rows.append(
                [wl] + [common.pct(self.overheads[(wl, b)]) for b in BARS]
            )
        rows.append(["mean"] + [common.pct(self.mean(b)) for b in BARS])
        return common.format_table(["workload"] + list(BARS), rows)

    def chart(self) -> str:
        """The figure itself: per-workload bar panels (log scale)."""
        from repro.experiments.charts import grouped_bar_chart

        workloads = sorted({wl for wl, _ in self.overheads})
        series = {
            bar: [self.overheads[(wl, bar)] for wl in workloads]
            for bar in BARS
        }
        return grouped_bar_chart(
            workloads, series,
            title="Fig 13: translation overhead vs T_ideal", log=True,
        )


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    staged: bool = True,
) -> Plan:
    """Declare the figure's cells.

    Native states are independent (fresh THP machine per workload); the
    two virtualized states are *chains* — each VM ages across the whole
    workload sequence, so per-VM ordering is part of the spec.  By
    default each chain runs as per-workload checkpointed stages
    (``staged=True``) the executor can pipeline and resume;
    ``staged=False`` keeps the monolithic single-cell chains (the
    differential baseline).  Either way the CA+CA chain cells are
    shared verbatim with fig 14 and Table VII.
    """
    scale = scale or common.DEFAULT_SCALE
    hw = hw or HardwareConfig()
    workloads = tuple(workloads)
    cells = [
        cell(
            "repro.experiments.common:run_cell_native_sim",
            workload=name,
            policy="thp",
            scale=scale,
            hw=hw,
            trace_len=trace_len,
            force_4k=(False, True),
        )
        for name in workloads
    ]
    if staged:
        cells.extend(
            common.virt_sim_stage_cells(
                host_policy="thp",
                guest_policy="thp",
                workloads=workloads,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
                force_4k=(False, True),
            )
        )
        cells.extend(
            common.virt_sim_stage_cells(
                host_policy="ca",
                guest_policy="ca",
                workloads=workloads,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
        )
    else:
        cells.append(
            cell(
                "repro.experiments.common:run_cell_virt_sim_chain",
                host_policy="thp",
                guest_policy="thp",
                workloads=workloads,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
                force_4k=(False, True),
            )
        )
        cells.append(
            cell(
                "repro.experiments.common:run_cell_virt_sim_chain",
                host_policy="ca",
                guest_policy="ca",
                workloads=workloads,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
        )

    def assemble(results) -> Fig13Result:
        costs = WalkLatencyModel().walk_costs()
        out = Fig13Result(costs=costs)
        n = len(workloads)
        native_sims = results[:n]
        if staged:
            thp_chain = common.stage_payloads(results[n:2 * n])
            ca_chain = common.stage_payloads(results[2 * n:3 * n])
        else:
            thp_chain, ca_chain = results[-2], results[-1]
        for i, name in enumerate(workloads):
            for bar, sim in zip(("THP", "4K"), native_sims[i]):
                out.sims[(name, bar)] = sim
                out.overheads[(name, bar)] = sim.overheads(costs)["paging"]
            for bar, sim in zip(("THP+THP", "4K+4K"), thp_chain[i]):
                out.sims[(name, bar)] = sim
                out.overheads[(name, bar)] = sim.overheads(costs)["paging"]
            (sim,) = ca_chain[i]
            schemes = sim.overheads(costs)
            out.sims[(name, "SpOT")] = sim
            out.overheads[(name, "SpOT")] = schemes["spot"]
            out.overheads[(name, "vRMM")] = schemes["vrmm"]
            out.overheads[(name, "DS")] = schemes["ds"]
            out.overheads[(name, "cTLB")] = schemes["ctlb"]
            out.overheads[(name, "Utopia")] = schemes["utopia"]
            out.overheads[(name, "Seg")] = schemes["seg"]
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    executor: Executor | None = None,
) -> Fig13Result:
    """Build memory states, run the TLB sims, apply the Table IV model."""
    return plan(scale, workloads, hw, trace_len).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(result.report())
    print()
    print(result.chart())


if __name__ == "__main__":  # pragma: no cover
    main()
