"""ASCII charts: render experiment results as terminal "figures".

The experiment modules print the paper's rows; these helpers render the
corresponding bars so a terminal run visually resembles the figure.
Log-scale support matters here: Fig. 13 spans four orders of magnitude.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Glyphs for bar fills.
FULL = "█"
PARTIAL = "▏▎▍▌▋▊▉"


def _bar(value: float, v_max: float, width: int, log: bool,
         v_min: float) -> str:
    if v_max <= 0 or value <= 0:
        return ""
    if log:
        # Half a decade of margin below the minimum so the smallest
        # positive value still renders a visible sliver.
        lo = math.log10(max(v_min, 1e-12)) - 0.5
        hi = math.log10(v_max)
        frac = 1.0 if hi <= lo else (math.log10(max(value, v_min)) - lo) / (hi - lo)
    else:
        frac = value / v_max
    frac = min(1.0, max(0.0, frac))
    cells = frac * width
    whole = int(cells)
    rem = cells - whole
    partial = PARTIAL[int(rem * len(PARTIAL))] if rem > 1 / len(PARTIAL) else ""
    return FULL * whole + partial


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    fmt: str = "{:.2%}",
    log: bool = False,
) -> str:
    """One horizontal bar per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    positives = [v for v in values if v > 0]
    v_max = max(positives, default=0.0)
    v_min = min(positives, default=1e-12)
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _bar(value, v_max, width, log, v_min)
        lines.append(f"{label.rjust(label_w)} | {bar} {fmt.format(value)}")
    if log and positives:
        lines.append(f"{' ' * label_w} | (log scale)")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str = "",
    width: int = 36,
    fmt: str = "{:.2%}",
    log: bool = False,
) -> str:
    """Bars per group, one line per series (Fig. 13-style panels)."""
    lines = [title] if title else []
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        labels = list(series)
        values = [series[s][gi] for s in labels]
        chart = bar_chart(labels, values, width=width, fmt=fmt, log=log)
        lines.extend("  " + line for line in chart.splitlines())
    return "\n".join(lines)


def stacked_fraction_chart(
    labels: Sequence[str],
    parts: dict[str, Sequence[float]],
    glyphs: str = "█▓░",
    width: int = 40,
    title: str = "",
) -> str:
    """Stacked 100% bars (Fig. 14-style outcome breakdowns)."""
    names = list(parts)
    if len(names) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} parts supported")
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for i, label in enumerate(labels):
        total = sum(parts[name][i] for name in names)
        bar = ""
        for name, glyph in zip(names, glyphs):
            frac = parts[name][i] / total if total else 0.0
            bar += glyph * round(frac * width)
        lines.append(f"{label.rjust(label_w)} | {bar[:width].ljust(width)}|")
    legend = "  ".join(f"{g}={n}" for n, g in zip(names, glyphs))
    lines.append(f"{' ' * label_w}   {legend}")
    return "\n".join(lines)
