"""Fig. 11: software runtime overheads normalized to THP.

The isolated cost of each allocation technique when no novel
translation hardware reaps its contiguity: fault handling (incl.
placement searches and eager zeroing), page migrations and the TLB
shootdowns they trigger, charged against a fixed useful-work budget.

Paper shapes: CA and eager add ~0% runtime; Ranger costs ~3% on average
(migrations + shootdowns); Ingens pays for its promotions.  The
TLB-friendly control workload is unaffected by CA paging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import USEFUL_US_PER_PAGE, RunOptions


@dataclass
class Fig11Result:
    """Normalized runtime per (workload, policy); THP == 1.0."""

    normalized: dict[tuple[str, str], float] = field(default_factory=dict)

    def mean_overhead(self, policy: str) -> float:
        """Average runtime overhead of a policy vs THP (0.03 = +3%)."""
        vals = [v for (wl, p), v in self.normalized.items() if p == policy]
        return sum(vals) / len(vals) - 1.0

    def report(self) -> str:
        workloads = sorted({wl for wl, _ in self.normalized})
        policies = sorted({p for _, p in self.normalized})
        rows = []
        for wl in workloads:
            rows.append(
                [wl] + [f"{self.normalized[(wl, p)]:.3f}" for p in policies]
            )
        rows.append(
            ["mean"] + [f"{1.0 + self.mean_overhead(p):.3f}" for p in policies]
        )
        return common.format_table(["workload"] + list(policies), rows)


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE + ("tlb_friendly",),
    policies: tuple[str, ...] = ("thp", "ca", "eager", "ranger", "ingens"),
) -> Plan:
    """Declare the grid cells; normalization happens at assembly.

    The cells are plain ``sample_every=None`` native runs — the same
    grid Table V and Table VI consume, so all three experiments share
    results through the run cache.
    """
    scale = scale or common.QUICK_SCALE
    ordered = ("thp",) + tuple(p for p in policies if p != "thp")
    keys = [(name, policy) for policy in ordered for name in workloads]
    cells = [
        cell(
            "repro.experiments.common:run_cell_native",
            workload=name,
            policy=policy,
            scale=scale,
            options=RunOptions(sample_every=None),
        )
        for name, policy in keys
    ]

    def assemble(results) -> Fig11Result:
        out = Fig11Result()
        baselines = {
            name: r.software
            for (name, policy), r in zip(keys, results)
            if policy == "thp"
        }
        useful = {
            name: r.footprint_pages * USEFUL_US_PER_PAGE
            for (name, policy), r in zip(keys, results)
            if policy == "thp"
        }
        for (name, policy), r in zip(keys, results):
            out.normalized[(name, policy)] = r.software.normalized_runtime(
                baselines[name], useful[name]
            )
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE + ("tlb_friendly",),
    policies: tuple[str, ...] = ("thp", "ca", "eager", "ranger", "ingens"),
    executor: Executor | None = None,
) -> Fig11Result:
    """Measure modelled kernel time per run; normalize to THP's."""
    return plan(scale, workloads, policies).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
