"""Fig. 11: software runtime overheads normalized to THP.

The isolated cost of each allocation technique when no novel
translation hardware reaps its contiguity: fault handling (incl.
placement searches and eager zeroing), page migrations and the TLB
shootdowns they trigger, charged against a fixed useful-work budget.

Paper shapes: CA and eager add ~0% runtime; Ranger costs ~3% on average
(migrations + shootdowns); Ingens pays for its promotions.  The
TLB-friendly control workload is unaffected by CA paging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.metrics.faults import SoftwareOverhead
from repro.sim.config import ScaleProfile
from repro.sim.runner import USEFUL_US_PER_PAGE, RunOptions, run_native


@dataclass
class Fig11Result:
    """Normalized runtime per (workload, policy); THP == 1.0."""

    normalized: dict[tuple[str, str], float] = field(default_factory=dict)

    def mean_overhead(self, policy: str) -> float:
        """Average runtime overhead of a policy vs THP (0.03 = +3%)."""
        vals = [v for (wl, p), v in self.normalized.items() if p == policy]
        return sum(vals) / len(vals) - 1.0

    def report(self) -> str:
        workloads = sorted({wl for wl, _ in self.normalized})
        policies = sorted({p for _, p in self.normalized})
        rows = []
        for wl in workloads:
            rows.append(
                [wl] + [f"{self.normalized[(wl, p)]:.3f}" for p in policies]
            )
        rows.append(
            ["mean"] + [f"{1.0 + self.mean_overhead(p):.3f}" for p in policies]
        )
        return common.format_table(["workload"] + list(policies), rows)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE + ("tlb_friendly",),
    policies: tuple[str, ...] = ("thp", "ca", "eager", "ranger", "ingens"),
) -> Fig11Result:
    """Measure modelled kernel time per run; normalize to THP's."""
    scale = scale or common.QUICK_SCALE
    result = Fig11Result()
    baselines: dict[str, SoftwareOverhead] = {}
    useful: dict[str, float] = {}
    for policy in ("thp",) + tuple(p for p in policies if p != "thp"):
        for name in workloads:
            machine = common.native_machine(policy, scale)
            wl = common.workload(name, scale)
            r = run_native(machine, wl, RunOptions(sample_every=None))
            if policy == "thp":
                baselines[name] = r.software
                useful[name] = wl.footprint_pages * USEFUL_US_PER_PAGE
            result.normalized[(name, policy)] = r.software.normalized_runtime(
                baselines[name], useful[name]
            )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
