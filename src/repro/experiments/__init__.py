"""Experiment drivers: one module per paper table/figure.

Each module exposes ``run(...)`` returning a typed result and a
``main()`` that prints the same rows/series the paper reports.  The
benchmarks under ``benchmarks/`` and the examples under ``examples/``
are thin wrappers over these.

| module    | reproduces                                             |
|-----------|--------------------------------------------------------|
| fig1      | motivation: eager under fragmentation, ranger latency  |
| table1    | vRMM ranges & vHC anchors for 99% coverage             |
| fig7      | native contiguity, no memory pressure                  |
| fig8      | contiguity under hog fragmentation (geomean)           |
| fig9      | free-block size distribution after runs                |
| fig10     | multi-programmed 2x SVM coverage                       |
| fig11     | software runtime overheads vs THP                      |
| table5    | page-fault count + 99th latency                        |
| table6    | memory bloat vs 4K demand paging                       |
| fig12     | virtualized (2D) contiguity                            |
| fig13     | translation overheads: 4K/THP/SpOT/vRMM/DS             |
| fig14     | SpOT prediction breakdown                              |
| table7    | unsafe-load (USL) estimation                           |
"""

from repro.experiments import common

__all__ = ["common"]
