"""Table I: vRMM ranges and vHC anchor entries for 99% footprint coverage.

For each workload running virtualized (both dimensions with the same
policy), count:

- the number of 2D *ranges* (contiguous gVA→hPA mappings, largest
  first) needed to cover 99% of the footprint — what vRMM's range
  tables would hold,
- the number of *anchor entries* hybrid coalescing would need for the
  same coverage, at the dynamically chosen anchor distance, and
- the number of run-coalesced *cTLB entries* (Ban & Cheng) for the
  same coverage — anchors at the fixed coalescing span, an extended
  column the paper never measured.

Paper shapes: CA paging cuts both counts by orders of magnitude versus
default THP, but vHC needs ~38x more entries than vRMM under CA because
anchors are virtually aligned while CA's contiguity is not (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.hw.coalesced_tlb import ctlb_entries_for_coverage
from repro.hw.hybrid_coalescing import vhc_entries_for_coverage
from repro.metrics.contiguity import mappings_for_coverage
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import RunOptions, run_virtualized
from repro.virt.introspect import two_d_runs


@dataclass
class Table1Row:
    """One workload's entry counts under one policy pair."""

    workload: str
    policy: str
    ranges: int
    vhc_entries: int
    #: Coalesced-TLB entries for the same coverage (default 0 keeps
    #: positional construction of the original columns working).
    ctlb_entries: int = 0


@dataclass
class Table1Result:
    """All rows plus the geomean summary line."""

    rows: list[Table1Row] = field(default_factory=list)

    def row(self, workload: str, policy: str) -> Table1Row:
        for r in self.rows:
            if r.workload == workload and r.policy == policy:
                return r
        raise KeyError((workload, policy))

    def geomean(self, policy: str) -> tuple[float, float]:
        sel = [r for r in self.rows if r.policy == policy]
        return (
            common.geomean(r.ranges for r in sel),
            common.geomean(r.vhc_entries for r in sel),
        )

    def geomean_ctlb(self, policy: str) -> float:
        sel = [r for r in self.rows if r.policy == policy]
        return common.geomean(r.ctlb_entries for r in sel)

    def report(self) -> str:
        table = [
            (r.workload, r.policy, r.ranges, r.vhc_entries, r.ctlb_entries)
            for r in self.rows
        ]
        for policy in sorted({r.policy for r in self.rows}):
            g_ranges, g_vhc = self.geomean(policy)
            g_ctlb = self.geomean_ctlb(policy)
            table.append(
                (
                    "geomean", policy,
                    f"{g_ranges:.0f}", f"{g_vhc:.0f}", f"{g_ctlb:.0f}",
                )
            )
        return common.format_table(
            ("workload", "policy", "vRMM ranges", "vHC entries",
             "cTLB entries"),
            table,
        )


def run_cell_chain(
    *,
    policy: str,
    workloads: tuple[str, ...],
    scale: ScaleProfile,
) -> list[tuple[int, int, int]]:
    """One aging VM runs the workloads in order; per workload, count the
    2D ranges, vHC anchor entries and coalesced-TLB entries for 99%
    coverage while the process is still alive (the introspection needs
    the live memory state)."""
    vm = common.virtual_machine(policy, policy, scale)
    counts = []
    for name in workloads:
        wl = common.workload(name, scale)
        r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
        runs = two_d_runs(vm, r.process)
        footprint = runs.total_pages
        counts.append(
            (
                mappings_for_coverage(runs, footprint, 0.99),
                vhc_entries_for_coverage(list(runs), footprint, 0.99),
                ctlb_entries_for_coverage(list(runs), footprint, 0.99),
            )
        )
        vm.guest_exit_process(r.process)
        vm.guest_kernel.drop_caches()
    return counts


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ca"),
) -> Plan:
    """One chain cell per policy pair (VM state persists across runs)."""
    scale = scale or common.QUICK_SCALE
    workloads = tuple(workloads)
    cells = [
        cell(
            "repro.experiments.table1:run_cell_chain",
            policy=policy,
            workloads=workloads,
            scale=scale,
        )
        for policy in policies
    ]

    def assemble(results) -> Table1Result:
        out = Table1Result()
        for policy, counts in zip(policies, results):
            for name, (ranges, vhc_entries, ctlb_entries) in zip(
                workloads, counts
            ):
                out.rows.append(
                    Table1Row(
                        workload=name,
                        policy=policy,
                        ranges=ranges,
                        vhc_entries=vhc_entries,
                        ctlb_entries=ctlb_entries,
                    )
                )
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ca"),
    executor: Executor | None = None,
) -> Table1Result:
    """Run the virtualized suite under each policy pair and count entries."""
    return plan(scale, workloads, policies).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
