"""Fig. 10: the multi-programmed case — two SVM instances at once.

Two processes run the same workload concurrently (their allocation
steps interleave).  Reported: each instance's coverage of its 32
largest mappings over time.

Paper shapes: CA's next-fit placement keeps the two footprints in
disjoint regions (coverage near eager's, without pre-allocation);
Ranger struggles — scanning processes serially, it keeps migrating
pages between the two footprints and neither coalesces well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell


@dataclass
class Fig10Result:
    """Per-policy, per-instance coverage and mapping-count series."""

    series: dict[tuple[str, int], list[float]] = field(default_factory=dict)
    mappings: dict[tuple[str, int], list[int]] = field(default_factory=dict)

    def final_coverage(self, policy: str) -> tuple[float, float]:
        return (
            self.series[(policy, 0)][-1],
            self.series[(policy, 1)][-1],
        )

    def final_mappings(self, policy: str) -> tuple[int, int]:
        return (
            self.mappings[(policy, 0)][-1],
            self.mappings[(policy, 1)][-1],
        )

    def report(self) -> str:
        rows = []
        for (policy, instance), series in sorted(self.series.items()):
            rows.append(
                (
                    policy,
                    instance,
                    common.pct(min(series)),
                    common.pct(series[-1]),
                    self.mappings[(policy, instance)][-1],
                )
            )
        return common.format_table(
            ("policy", "instance", "cov32(min)", "cov32(final)", "maps99(final)"),
            rows,
        )


def run_cell_multiprog(
    *,
    policy: str,
    workload: str,
    scale: ScaleProfile,
    sample_every: int,
) -> list[tuple[list[float], list[int]]]:
    """Interleave two instances on one machine; per-instance series."""
    from repro.sim.multiprog import interleave, native_instances

    machine = common.native_machine(policy, scale)
    workloads = [common.workload(workload, scale, seed=i) for i in range(2)]
    instances = native_instances(machine, workloads)
    interleave(
        instances,
        sample_every=sample_every,
        daemons=machine.kernel.run_daemons,
    )
    out = [
        (
            [s.coverage_32 for s in instance.samples],
            [s.mappings_99 for s in instance.samples],
        )
        for instance in instances
    ]
    for process in machine.kernel.iter_processes():
        machine.kernel.exit_process(process)
    return out


def plan(
    scale: ScaleProfile | None = None,
    policies: tuple[str, ...] = ("thp", "eager", "ranger", "ca"),
    workload_name: str = "svm",
    sample_every: int = 16,
) -> Plan:
    """One two-instance interleaving cell per policy."""
    scale = scale or common.QUICK_SCALE
    cells = [
        cell(
            "repro.experiments.fig10:run_cell_multiprog",
            policy=policy,
            workload=workload_name,
            scale=scale,
            sample_every=sample_every,
        )
        for policy in policies
    ]

    def assemble(results) -> Fig10Result:
        out = Fig10Result()
        for policy, instances in zip(policies, results):
            for i, (coverage, mappings) in enumerate(instances):
                out.series[(policy, i)] = coverage
                out.mappings[(policy, i)] = mappings
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    policies: tuple[str, ...] = ("thp", "eager", "ranger", "ca"),
    workload_name: str = "svm",
    sample_every: int = 16,
    executor: Executor | None = None,
) -> Fig10Result:
    """Interleave two instances' allocation phases on one machine."""
    return plan(scale, policies, workload_name, sample_every).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
