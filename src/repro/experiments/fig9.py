"""Fig. 9: free-block size distribution after a benchmark batch.

A set of workloads runs to completion (leaving page-cache files
behind), then the machine's *unaligned* free runs are bucketed by size.
CA paging leaves far more free memory in the largest bucket: its
allocations (and the contiguous page-cache placements) come and go
without shattering the free space — the fragmentation-restraint claim.

Bucket boundaries are expressed as fractions of a node so they make
sense at any scale; at the paper's scale they correspond to Fig. 9's
2M/64M/1G cut-offs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.mm.free_stats import FreeBlockHistogram, free_block_histogram
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import RunOptions, run_native
from repro.units import PAGE_SIZE


def scaled_buckets(node_pages: int) -> tuple[tuple[str, int], ...]:
    """Fig. 9 buckets, scaled: <=0.4%, 0.4-12.5%, 12.5-50%, >50% of a node."""
    return (
        ("small", max(1, node_pages // 256) * PAGE_SIZE),
        ("medium", (node_pages // 8) * PAGE_SIZE),
        ("large", (node_pages // 2) * PAGE_SIZE),
        ("huge", 1 << 62),
    )


@dataclass
class Fig9Result:
    """Free-run histogram per policy."""

    histograms: dict[str, FreeBlockHistogram] = field(default_factory=dict)

    def huge_fraction(self, policy: str) -> float:
        """Share of free memory in the largest bucket."""
        return self.histograms[policy].fraction("huge")

    def report(self) -> str:
        rows = []
        for policy, hist in self.histograms.items():
            rows.append(
                [policy]
                + [common.pct(hist.fraction(b)) for b in ("small", "medium", "large", "huge")]
            )
        return common.format_table(
            ("policy", "small", "medium", "large", "huge(>50% node)"), rows
        )


def run_cell_batch(
    *,
    policy: str,
    workloads: tuple[str, ...],
    scale: ScaleProfile,
) -> FreeBlockHistogram:
    """Run the batch on one machine, then scan its free memory."""
    machine = common.native_machine(policy, scale)
    for name in workloads:
        wl = common.workload(name, scale)
        scratch = max(1, wl.footprint_pages // 50)
        run_native(
            machine,
            wl,
            RunOptions(sample_every=None, scratch_file_pages=scratch),
        )
    buckets = scaled_buckets(machine.config.node_pages[0])
    return free_block_histogram(machine.mem, buckets)


def plan(
    scale: ScaleProfile | None = None,
    policies: tuple[str, ...] = ("thp", "ca"),
    workloads: tuple[str, ...] = ("svm", "pagerank", "xsbench"),
) -> Plan:
    """One batch cell per policy (the batch order is part of the spec)."""
    scale = scale or common.QUICK_SCALE
    workloads = tuple(workloads)
    cells = [
        cell(
            "repro.experiments.fig9:run_cell_batch",
            policy=policy,
            workloads=workloads,
            scale=scale,
        )
        for policy in policies
    ]

    def assemble(results) -> Fig9Result:
        out = Fig9Result()
        for policy, hist in zip(policies, results):
            out.histograms[policy] = hist
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    policies: tuple[str, ...] = ("thp", "ca"),
    workloads: tuple[str, ...] = ("svm", "pagerank", "xsbench"),
    executor: Executor | None = None,
) -> Fig9Result:
    """Run the batch per policy, then scan free memory."""
    return plan(scale, policies, workloads).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
