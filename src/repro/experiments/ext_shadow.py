"""Extension experiment: nested vs shadow paging under CA+SpOT.

Not a paper figure — it tests the paper's §VII claim that CA paging and
SpOT are agnostic to the virtualization technique.  For each workload,
the same CA+CA memory state is costed under:

- **nested** paging: TLB misses pay the 2D walk (~81 cycles at THP),
  guest page-table updates are free;
- **shadow** paging: TLB misses pay a native walk (~32 cycles), but
  every guest PTE update costs a VM exit + shadow sync (~2700 cycles);
- both, with **SpOT** attached (it predicts the same gVA→hPA offsets
  either way — the predictor neither knows nor cares which tables back
  the translation).

The classic crossover appears: shadow wins in steady state
(miss-dominated), nested wins for fault-heavy phases; SpOT compresses
the steady-state gap to near zero, which is the paper's agility
argument made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.hw.walk import WalkLatencyModel
from repro.sim.config import HardwareConfig, ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import RunOptions, run_virtualized
from repro.virt.shadow import SHADOW_SYNC_CYCLES, attach_shadow_paging

TRACE_LEN = 150_000
#: The simulated trace samples one steady-state window; page faults
#: (and hence shadow syncs) happen once per page over the *whole* run,
#: which spans many such windows.  Sync costs amortize accordingly.
STEADY_WINDOWS = 16


@dataclass
class ShadowRow:
    """One workload's nested-vs-shadow cost breakdown (vs T_ideal)."""

    workload: str
    nested_overhead: float
    shadow_walk_overhead: float
    shadow_sync_overhead: float
    nested_spot_overhead: float
    shadow_spot_overhead: float
    splintered_leaves: int

    @property
    def shadow_overhead(self) -> float:
        return self.shadow_walk_overhead + self.shadow_sync_overhead


@dataclass
class ExtShadowResult:
    rows: dict[str, ShadowRow] = field(default_factory=dict)

    def report(self) -> str:
        table = []
        for r in self.rows.values():
            table.append(
                (
                    r.workload,
                    common.pct(r.nested_overhead),
                    common.pct(r.shadow_overhead),
                    common.pct(r.nested_spot_overhead),
                    common.pct(r.shadow_spot_overhead),
                    r.splintered_leaves,
                )
            )
        return common.format_table(
            ("workload", "nested", "shadow(walk+sync)",
             "nested+SpOT", "shadow+SpOT", "splintered"),
            table,
        )


def _shadow_step(vm, pager, name: str, scale: ScaleProfile,
                 hw: HardwareConfig, trace_len: int) -> ShadowRow:
    """One workload on an already-attached shadow-paging VM."""
    costs = WalkLatencyModel().walk_costs()
    wl = common.workload(name, scale)
    splinters_before = pager.stats.splintered_leaves
    r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
    view = TranslationView.virtualized(vm, r.process)
    sim = MmuSimulator(view, hw).run(
        wl.trace(trace_len), r.vma_start_vpns, workload=wl
    )
    t_ideal = sim.t_ideal_cycles
    syncs = r.faults.total_faults  # one shadow sync per guest PTE install
    nested_cycles = sim.walks * costs.nested_thp
    shadow_walk_cycles = sim.walks * costs.native_thp
    spot_exposed = (
        sim.spot_no_prediction
        + sim.spot_mispredict
    )
    flush = sim.spot_mispredict * costs.mispredict_penalty
    row = ShadowRow(
        workload=name,
        nested_overhead=nested_cycles / t_ideal,
        shadow_walk_overhead=shadow_walk_cycles / t_ideal,
        shadow_sync_overhead=syncs * SHADOW_SYNC_CYCLES
        / (t_ideal * STEADY_WINDOWS),
        nested_spot_overhead=(spot_exposed * costs.nested_thp + flush)
        / t_ideal,
        shadow_spot_overhead=(spot_exposed * costs.native_thp + flush)
        / t_ideal,
        splintered_leaves=pager.stats.splintered_leaves
        - splinters_before,
    )
    vm.guest_exit_process(r.process)
    vm.guest_kernel.drop_caches()
    return row


def run_cell_shadow_chain(
    *,
    workloads: tuple[str, ...],
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
) -> list[ShadowRow]:
    """One shadow-paging VM ages across the whole suite; one row per
    workload."""
    vm = common.virtual_machine("ca", "ca", scale)
    pager = attach_shadow_paging(vm)
    return [
        _shadow_step(vm, pager, name, scale, hw, trace_len)
        for name in workloads
    ]


def run_cell_shadow_stage(
    *prev: common.ChainStage,
    workload: str,
    scale: ScaleProfile,
    hw: HardwareConfig,
    trace_len: int,
) -> common.ChainStage:
    """One checkpointed workload step of the shadow chain.

    The pager (hooks, tables, stats) rides inside the VM checkpoint, so
    a resumed stage continues exactly where the checkpoint left off.
    Receives the whole chain prefix so delta checkpoints can resolve
    ref frames into any earlier stage's blob.
    """
    if not prev:
        vm = common.virtual_machine("ca", "ca", scale)
        pager = attach_shadow_paging(vm)
    else:
        vm = common.resume_vm(*prev)
        pager = vm.shadow_pager
    row = _shadow_step(vm, pager, workload, scale, hw, trace_len)
    blob, digest = common.checkpoint_vm(vm, prev)
    return common.ChainStage(
        payload=row,
        state=blob,
        state_digest=digest,
        base_digest=prev[-1].state_digest if prev else None,
    )


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    staged: bool = True,
) -> Plan:
    """The shadow chain: the pager's state (and the VM's fragmentation)
    carries across workloads — per-workload checkpointed stages by
    default, one monolithic cell with ``staged=False``."""
    scale = scale or common.QUICK_SCALE
    hw = hw or HardwareConfig()
    if staged:
        cells_out = []
        for name in workloads:
            c = cell(
                "repro.experiments.ext_shadow:run_cell_shadow_stage",
                deps=tuple(cells_out),
                workload=name,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
            cells_out.append(c)
    else:
        cells_out = [
            cell(
                "repro.experiments.ext_shadow:run_cell_shadow_chain",
                workloads=tuple(workloads),
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
        ]

    def assemble(results) -> ExtShadowResult:
        rows = common.stage_payloads(results) if staged else results[0]
        out = ExtShadowResult()
        for row in rows:
            out.rows[row.workload] = row
        return out

    return Plan(cells_out, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    executor: Executor | None = None,
) -> ExtShadowResult:
    """Cost the same CA+CA states under both virtualization techniques."""
    return plan(scale, workloads, hw, trace_len).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
