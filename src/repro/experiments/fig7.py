"""Fig. 7: native contiguity without memory pressure.

For each workload and each allocation technique, report the
time-averaged coverage of the 32 and 128 largest mappings and the
number of mappings needed for 99% footprint coverage.

Paper shapes: THP and Ingens need thousands of mappings (contiguity
capped at 2 MiB); CA covers 99% with ~27 mappings on average, close to
eager pre-allocation and ideal, better than Ranger (whose migrations
lag for allocation-heavy workloads); CA's coverage drops for BT at the
NUMA spill point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.results import RunResult
from repro.sim.runner import RunOptions


@dataclass
class Fig7Result:
    """All runs of the figure, indexed by (workload, policy)."""

    runs: dict[tuple[str, str], RunResult] = field(default_factory=dict)

    def row(self, workload: str, policy: str) -> RunResult:
        return self.runs[(workload, policy)]

    def mappings_99(self, policy: str) -> float:
        """Geomean #mappings for 99% coverage across the suite."""
        return common.geomean(
            self.runs[key].average.mappings_99
            for key in self.runs
            if key[1] == policy
        )

    def report(self) -> str:
        rows = []
        for (wl, pol), r in sorted(self.runs.items()):
            rows.append(
                (
                    wl,
                    pol,
                    common.pct(r.average.coverage_32),
                    common.pct(r.average.coverage_128),
                    r.average.mappings_99,
                )
            )
        return common.format_table(
            ("workload", "policy", "cov32(avg)", "cov128(avg)", "maps99(avg)"), rows
        )


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = common.CONTIGUITY_POLICIES,
    sample_every: int = 24,
    steady_epochs: int = 24,
) -> Plan:
    """Declare the figure's cells: one fresh machine per (workload, policy).

    ``steady_epochs`` weights the post-allocation phase in the time
    average the way the paper's long steady states do (asynchronous
    defragmentation keeps working there).
    """
    scale = scale or common.QUICK_SCALE
    keys = [(name, policy) for policy in policies for name in workloads]
    cells = [
        cell(
            "repro.experiments.common:run_cell_native",
            workload=name,
            policy=policy,
            scale=scale,
            options=RunOptions(
                sample_every=sample_every, steady_epochs=steady_epochs
            ),
        )
        for name, policy in keys
    ]

    def assemble(results) -> Fig7Result:
        out = Fig7Result()
        for key, r in zip(keys, results):
            out.runs[key] = r
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = common.CONTIGUITY_POLICIES,
    sample_every: int = 24,
    steady_epochs: int = 24,
    executor: Executor | None = None,
) -> Fig7Result:
    """Run the full figure (optionally parallel/cached via ``executor``)."""
    return plan(scale, workloads, policies, sample_every, steady_epochs).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
