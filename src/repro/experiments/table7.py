"""Table VII: unsafe-load (USL) estimation for SpOT vs Spectre.

Applies the paper's two equations to the simulated counters of the
CA+CA virtualized runs: SpOT opens a speculative window per DTLB miss
(long: the nested walk, ~81 cycles) while branch prediction opens one
per branch (short: ~20 cycles) — but branches are ~20x more frequent,
so SpOT's unsafe-load mass stays well below Spectre's, and mitigations
sized for Spectre (InvisiSpec, ~5% for 16.5% USLs) cover SpOT for < 2%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.hw.walk import WalkLatencyModel
from repro.metrics.usl import UslEstimate, estimate_usl
from repro.sim.config import HardwareConfig, ScaleProfile
from repro.sim.jobs import Executor, Plan, cell

TRACE_LEN = 200_000
#: Fraction of instructions that are loads (typical integer mix).
LOAD_FRACTION = 0.25
#: Effective CPI including cache/memory stalls (loads-per-cycle uses
#: real execution time, not the ideal-CPI denominator of Table IV).
EFFECTIVE_CPI = 1.2


@dataclass
class Table7Result:
    """Per-workload USL estimates + the geomean row the paper prints."""

    estimates: dict[str, UslEstimate] = field(default_factory=dict)

    def geomean_row(self) -> dict[str, float]:
        keys = (
            "branches_per_instruction",
            "dtlb_misses_per_instruction",
            "spectre_usl_per_instruction",
            "spot_usl_per_instruction",
        )
        return {
            k: common.geomean(getattr(e, k) for e in self.estimates.values())
            for k in keys
        }

    def report(self) -> str:
        rows = []
        for wl, e in self.estimates.items():
            p = e.as_percentages()
            rows.append(
                (
                    wl,
                    f"{p['branches/instructions(%)']:.2f}",
                    f"{p['dtlb_misses/instructions(%)']:.3f}",
                    f"{p['spectre_usl/instructions(%)']:.1f}",
                    f"{p['spot_usl/instructions(%)']:.2f}",
                )
            )
        g = self.geomean_row()
        rows.append(
            (
                "geomean",
                f"{100 * g['branches_per_instruction']:.2f}",
                f"{100 * g['dtlb_misses_per_instruction']:.3f}",
                f"{100 * g['spectre_usl_per_instruction']:.1f}",
                f"{100 * g['spot_usl_per_instruction']:.2f}",
            )
        )
        return common.format_table(
            ("workload", "branches/ins %", "misses/ins %",
             "Spectre USL %", "SpOT USL %"),
            rows,
        )


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    staged: bool = True,
) -> Plan:
    """The CA+CA chain (shared with fig 13 / fig 14; staged per
    workload by default); the USL equations apply to the simulated
    counters at assembly time."""
    scale = scale or common.DEFAULT_SCALE
    hw = hw or HardwareConfig()
    workloads = tuple(workloads)
    if staged:
        cells = common.virt_sim_stage_cells(
            host_policy="ca",
            guest_policy="ca",
            workloads=workloads,
            scale=scale,
            hw=hw,
            trace_len=trace_len,
        )
    else:
        cells = [
            cell(
                "repro.experiments.common:run_cell_virt_sim_chain",
                host_policy="ca",
                guest_policy="ca",
                workloads=workloads,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
        ]

    def assemble(results) -> Table7Result:
        chain = common.stage_payloads(results) if staged else results[0]
        walk_cycles = WalkLatencyModel().walk_costs().nested_thp
        out = Table7Result()
        for name, (sim,) in zip(workloads, chain):
            wl = common.workload(name, scale)
            instructions = wl.instruction_count(sim.accesses)
            cycles = instructions * EFFECTIVE_CPI + sim.walks * walk_cycles
            out.estimates[name] = estimate_usl(
                instructions=instructions,
                branches=int(instructions * wl.branch_fraction),
                dtlb_misses=sim.walks,
                loads=int(instructions * LOAD_FRACTION),
                cycles=cycles,
                walk_cycles=walk_cycles,
            )
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    executor: Executor | None = None,
) -> Table7Result:
    """Collect counters from CA+CA virtual runs and apply Table VII."""
    return plan(scale, workloads, hw, trace_len).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
