"""Fig. 14: SpOT prediction breakdown per workload.

For every last-level TLB miss under CA+CA virtualized execution:
fraction predicted correctly, mispredicted, or not predicted (the
confidence counters declined to speculate).

Paper shapes: correct predictions exceed 99% for PageRank; the worst
misprediction rate belongs to hashjoin's random probes and stays in the
single digits; irregular workloads show up as *no-prediction* mass
(the thrash filter and confidence counters doing their job), not as
pipeline flushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.sim.config import HardwareConfig, ScaleProfile
from repro.sim.runner import RunOptions, run_virtualized

TRACE_LEN = 200_000


@dataclass
class Fig14Result:
    """Per-workload (correct, mispredict, no_prediction) fractions."""

    breakdown: dict[str, dict[str, float]] = field(default_factory=dict)

    def correct(self, workload: str) -> float:
        return self.breakdown[workload]["correct"]

    def mispredict(self, workload: str) -> float:
        return self.breakdown[workload]["mispredict"]

    def report(self) -> str:
        rows = [
            (
                wl,
                common.pct(b["correct"]),
                common.pct(b["mispredict"]),
                common.pct(b["no_prediction"]),
            )
            for wl, b in self.breakdown.items()
        ]
        return common.format_table(
            ("workload", "correct", "mispredict", "no prediction"), rows
        )

    def chart(self) -> str:
        """The figure itself: stacked outcome bars per workload."""
        from repro.experiments.charts import stacked_fraction_chart

        labels = list(self.breakdown)
        parts = {
            outcome: [self.breakdown[wl][outcome] for wl in labels]
            for outcome in ("correct", "mispredict", "no_prediction")
        }
        return stacked_fraction_chart(
            labels, parts, title="Fig 14: SpOT outcomes per TLB miss"
        )


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
) -> Fig14Result:
    """CA+CA virtualized states, SpOT outcome counting."""
    scale = scale or common.DEFAULT_SCALE
    hw = hw or HardwareConfig()
    result = Fig14Result()
    vm = common.virtual_machine("ca", "ca", scale)
    for name in workloads:
        wl = common.workload(name, scale)
        r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
        view = TranslationView.virtualized(vm, r.process)
        sim = MmuSimulator(view, hw).run(wl.trace(trace_len), r.vma_start_vpns, workload=wl)
        result.breakdown[name] = sim.spot_breakdown()
        vm.guest_exit_process(r.process)
        vm.guest_kernel.drop_caches()
    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(result.report())
    print()
    print(result.chart())


if __name__ == "__main__":  # pragma: no cover
    main()
