"""Fig. 14: SpOT prediction breakdown per workload.

For every last-level TLB miss under CA+CA virtualized execution:
fraction predicted correctly, mispredicted, or not predicted (the
confidence counters declined to speculate).  Alongside, the same miss
stream's coverage under the other run-exploiting schemes (vRMM ranges,
coalesced-TLB entries, Utopia's RestSeg, the segmentation baseline) —
all read off the same simulation cells.

Paper shapes: correct predictions exceed 99% for PageRank; the worst
misprediction rate belongs to hashjoin's random probes and stays in the
single digits; irregular workloads show up as *no-prediction* mass
(the thrash filter and confidence counters doing their job), not as
pipeline flushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import HardwareConfig, ScaleProfile
from repro.sim.jobs import Executor, Plan, cell

TRACE_LEN = 200_000


@dataclass
class Fig14Result:
    """Per-workload (correct, mispredict, no_prediction) fractions."""

    breakdown: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Per-workload miss-coverage fraction of each run-exploiting
    #: scheme on the same CA+CA miss stream (vrmm/ctlb/seg: covered
    #: misses; utopia: restrictive-region hits).
    scheme_coverage: dict[str, dict[str, float]] = field(default_factory=dict)

    def correct(self, workload: str) -> float:
        return self.breakdown[workload]["correct"]

    def mispredict(self, workload: str) -> float:
        return self.breakdown[workload]["mispredict"]

    def report(self) -> str:
        rows = []
        for wl, b in self.breakdown.items():
            cov = self.scheme_coverage.get(wl, {})
            rows.append(
                (
                    wl,
                    common.pct(b["correct"]),
                    common.pct(b["mispredict"]),
                    common.pct(b["no_prediction"]),
                    common.pct(cov.get("vrmm", 0.0)),
                    common.pct(cov.get("ctlb", 0.0)),
                    common.pct(cov.get("utopia", 0.0)),
                    common.pct(cov.get("seg", 0.0)),
                )
            )
        return common.format_table(
            (
                "workload", "correct", "mispredict", "no prediction",
                "vrmm cov", "ctlb cov", "utopia rest", "seg cov",
            ),
            rows,
        )

    def chart(self) -> str:
        """The figure itself: stacked outcome bars per workload."""
        from repro.experiments.charts import stacked_fraction_chart

        labels = list(self.breakdown)
        parts = {
            outcome: [self.breakdown[wl][outcome] for wl in labels]
            for outcome in ("correct", "mispredict", "no_prediction")
        }
        return stacked_fraction_chart(
            labels, parts, title="Fig 14: SpOT outcomes per TLB miss"
        )


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    staged: bool = True,
) -> Plan:
    """The CA+CA chain — identical to fig 13's scheme chain and
    Table VII's counter source, so the cache computes it once.  Staged
    (the default) it is one checkpointed cell per workload;
    ``staged=False`` keeps the monolithic single cell."""
    scale = scale or common.DEFAULT_SCALE
    hw = hw or HardwareConfig()
    workloads = tuple(workloads)
    if staged:
        cells = common.virt_sim_stage_cells(
            host_policy="ca",
            guest_policy="ca",
            workloads=workloads,
            scale=scale,
            hw=hw,
            trace_len=trace_len,
        )
    else:
        cells = [
            cell(
                "repro.experiments.common:run_cell_virt_sim_chain",
                host_policy="ca",
                guest_policy="ca",
                workloads=workloads,
                scale=scale,
                hw=hw,
                trace_len=trace_len,
            )
        ]

    def assemble(results) -> Fig14Result:
        chain = common.stage_payloads(results) if staged else results[0]
        out = Fig14Result()
        for name, (sim,) in zip(workloads, chain):
            out.breakdown[name] = sim.spot_breakdown()
            walks = max(1, sim.walks)
            out.scheme_coverage[name] = {
                "vrmm": 1.0 - sim.rmm_uncovered / walks,
                "ctlb": 1.0 - sim.ctlb_uncovered / walks,
                "utopia": sim.utopia_rest / walks,
                "seg": 1.0 - sim.seg_outside / walks,
            }
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    hw: HardwareConfig | None = None,
    trace_len: int = TRACE_LEN,
    executor: Executor | None = None,
) -> Fig14Result:
    """CA+CA virtualized states, SpOT outcome counting."""
    return plan(scale, workloads, hw, trace_len).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    result = run()
    print(result.report())
    print()
    print(result.chart())


if __name__ == "__main__":  # pragma: no cover
    main()
