"""Fig. 12: contiguity in virtualized execution (2D, gVA→hPA).

CA paging runs in the guest and host independently (no coordination);
the workloads run *consecutively in one VM without reboots*, so nested
mappings persist and guest/host mismatches accumulate as the VM ages —
which is why the 32-largest coverage trails the native result while CA
still beats default paging by an order of magnitude in mappings-for-99%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.results import RunResult
from repro.sim.runner import RunOptions


@dataclass
class Fig12Result:
    """2D contiguity per (workload, policy-pair)."""

    runs: dict[tuple[str, str], RunResult] = field(default_factory=dict)

    def mappings_99(self, policy: str) -> float:
        return common.geomean(
            r.average.mappings_99
            for (wl, p), r in self.runs.items()
            if p == policy
        )

    def mean_coverage_32(self, policy: str) -> float:
        vals = [
            r.average.coverage_32
            for (wl, p), r in self.runs.items()
            if p == policy
        ]
        return sum(vals) / len(vals)

    def report(self) -> str:
        rows = []
        for (wl, pol), r in sorted(self.runs.items()):
            rows.append(
                (
                    wl,
                    pol,
                    common.pct(r.average.coverage_32),
                    common.pct(r.average.coverage_128),
                    r.average.mappings_99,
                )
            )
        return common.format_table(
            ("workload", "guest+host", "cov32(avg)", "cov128(avg)", "maps99(avg)"),
            rows,
        )


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ca"),
    sample_every: int = 24,
) -> Plan:
    """One chain cell per policy pair: the VM must age across workloads
    in order, so the chain — not the single run — is the unit of work."""
    scale = scale or common.QUICK_SCALE
    cells = [
        cell(
            "repro.experiments.common:run_cell_virt_chain",
            host_policy=policy,
            guest_policy=policy,
            workloads=tuple(workloads),
            scale=scale,
            options=RunOptions(sample_every=sample_every),
        )
        for policy in policies
    ]

    def assemble(results) -> Fig12Result:
        out = Fig12Result()
        for policy, chain in zip(policies, results):
            for name, r in zip(workloads, chain):
                out.runs[(name, policy)] = r
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ca"),
    sample_every: int = 24,
    executor: Executor | None = None,
) -> Fig12Result:
    """One long-lived VM per policy pair; workloads run consecutively."""
    return plan(scale, workloads, policies, sample_every).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
