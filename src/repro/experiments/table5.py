"""Table V: total page faults and 99th-percentile fault latency.

Aggregated over the benchmark suite: demand-paging techniques (THP, CA)
take the same number of faults with near-identical tail latency (CA
adds only its placement search); eager paging takes orders of magnitude
fewer faults but each zeroes a huge pre-allocated block, inflating the
99th percentile by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.metrics.faults import percentile
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import RunOptions


@dataclass
class Table5Row:
    """One policy's aggregate fault behaviour."""

    policy: str
    total_faults: int
    p99_latency_us: float


@dataclass
class Table5Result:
    rows: dict[str, Table5Row] = field(default_factory=dict)

    def report(self) -> str:
        table = [
            (r.policy, r.total_faults, f"{r.p99_latency_us:.0f}")
            for r in self.rows.values()
        ]
        return common.format_table(("policy", "total faults", "p99 latency (us)"), table)


def plan(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ca", "eager"),
) -> Plan:
    """Declare the native-grid cells (shared with fig 11 / table VI)."""
    scale = scale or common.QUICK_SCALE
    keys = [(policy, name) for policy in policies for name in workloads]
    cells = [
        cell(
            "repro.experiments.common:run_cell_native",
            workload=name,
            policy=policy,
            scale=scale,
            options=RunOptions(sample_every=None),
        )
        for policy, name in keys
    ]

    def assemble(results) -> Table5Result:
        out = Table5Result()
        for policy in policies:
            latencies: list[float] = []
            total = 0
            for (p, _), r in zip(keys, results):
                if p == policy:
                    total += r.faults.total_faults
                    latencies.extend(r.fault_latencies_us)
            out.rows[policy] = Table5Row(
                policy=policy,
                total_faults=total,
                p99_latency_us=percentile(latencies, 99.0),
            )
        return out

    return Plan(cells, assemble)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ca", "eager"),
    executor: Executor | None = None,
) -> Table5Result:
    """Aggregate fault events across the suite per policy."""
    return plan(scale, workloads, policies).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
