"""Table V: total page faults and 99th-percentile fault latency.

Aggregated over the benchmark suite: demand-paging techniques (THP, CA)
take the same number of faults with near-identical tail latency (CA
adds only its placement search); eager paging takes orders of magnitude
fewer faults but each zeroes a huge pre-allocated block, inflating the
99th percentile by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.metrics.faults import percentile
from repro.sim.config import ScaleProfile
from repro.sim.runner import RunOptions, run_native


@dataclass
class Table5Row:
    """One policy's aggregate fault behaviour."""

    policy: str
    total_faults: int
    p99_latency_us: float


@dataclass
class Table5Result:
    rows: dict[str, Table5Row] = field(default_factory=dict)

    def report(self) -> str:
        table = [
            (r.policy, r.total_faults, f"{r.p99_latency_us:.0f}")
            for r in self.rows.values()
        ]
        return common.format_table(("policy", "total faults", "p99 latency (us)"), table)


def run(
    scale: ScaleProfile | None = None,
    workloads: tuple[str, ...] = common.SUITE,
    policies: tuple[str, ...] = ("thp", "ca", "eager"),
) -> Table5Result:
    """Aggregate fault events across the suite per policy."""
    scale = scale or common.QUICK_SCALE
    result = Table5Result()
    for policy in policies:
        latencies: list[float] = []
        total = 0
        for name in workloads:
            machine = common.native_machine(policy, scale)
            wl = common.workload(name, scale)
            r = run_native(machine, wl, RunOptions(sample_every=None))
            total += r.faults.total_faults
            latencies.extend(r.fault_latencies_us)
        result.rows[policy] = Table5Row(
            policy=policy,
            total_faults=total,
            p99_latency_us=percentile(latencies, 99.0),
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
