"""Fig. 1(b,c): the motivation experiments.

- **Fig. 1b** — eager paging vs CA over 10 consecutive PageRank runs.
  Each run leaves long-lived page-cache pages (the input graph plus a
  scratch output file) behind; under default placement those scatter
  and external fragmentation accumulates, so eager paging's coverage of
  the 32 largest mappings decays run over run while CA sustains it
  (CA also places page-cache pages contiguously, restraining the
  fragmentation it will later face).

- **Fig. 1c** — XSBench coverage of the 32 largest mappings *during*
  execution: Translation Ranger coalesces only after allocation (its
  migrations lag the allocation phase), while CA paging has the
  contiguity at first touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import common
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor, Plan, cell
from repro.sim.runner import RunOptions, run_native


@dataclass
class Fig1bResult:
    """Coverage of the K largest mappings per consecutive run, per policy.

    K is scaled down with the footprint (the paper's 32 at 78 GB is
    trivially satisfied by the handful of runs a scaled footprint
    needs), and each run leaves long-lived allocations behind — scratch
    files in the page cache plus daemon/slab growth pinned at ~1 MiB
    granularity — so external fragmentation accumulates as the machine
    ages, like the paper's repetitively used server.
    """

    coverage_by_run: dict[str, list[float]] = field(default_factory=dict)
    mappings_by_run: dict[str, list[int]] = field(default_factory=dict)
    k: int = 8

    def decay(self, policy: str) -> float:
        """First-run minus last-run coverage (positive = decay)."""
        series = self.coverage_by_run[policy]
        return series[0] - series[-1]

    def report(self) -> str:
        rows = []
        for policy, series in self.coverage_by_run.items():
            rows.append([policy] + [common.pct(v) for v in series])
        n = max(len(s) for s in self.coverage_by_run.values())
        return common.format_table(
            ["policy"] + [f"run{i + 1}" for i in range(n)], rows
        )


def run_cell_fig1b_chain(
    *,
    policy: str,
    workload: str,
    scale: ScaleProfile,
    runs: int,
    k_largest: int,
    aging_pin_fraction: float,
) -> tuple[list[float], list[int]]:
    """Consecutive runs on one aging machine; the chain is the cell."""
    from repro.metrics.contiguity import coverage_of_k_largest

    machine = common.native_machine(policy, scale)
    wl = common.workload(workload, scale)
    scratch = max(1, wl.footprint_pages // 16)
    coverage = []
    mappings = []
    for _ in range(runs):
        r = run_native(
            machine,
            wl,
            RunOptions(sample_every=None, scratch_file_pages=scratch),
        )
        coverage.append(
            coverage_of_k_largest(r.run_sizes, sum(r.run_sizes), k_largest)
        )
        mappings.append(r.final.mappings_99)
        # Long-lived daemon / slab growth between runs.
        machine.mem.hog(aging_pin_fraction, machine.rng, block_order=8)
    return coverage, mappings


def plan_fig1b(
    scale: ScaleProfile | None = None,
    runs: int = 10,
    policies: tuple[str, ...] = ("eager", "ca"),
    workload_name: str = "pagerank",
    k_largest: int = 8,
    aging_pin_fraction: float = 0.005,
) -> Plan:
    """One aging-machine chain cell per policy."""
    scale = scale or common.QUICK_SCALE
    cells = [
        cell(
            "repro.experiments.fig1:run_cell_fig1b_chain",
            policy=policy,
            workload=workload_name,
            scale=scale,
            runs=runs,
            k_largest=k_largest,
            aging_pin_fraction=aging_pin_fraction,
        )
        for policy in policies
    ]

    def assemble(results) -> Fig1bResult:
        out = Fig1bResult(k=k_largest)
        for policy, (coverage, mappings) in zip(policies, results):
            out.coverage_by_run[policy] = coverage
            out.mappings_by_run[policy] = mappings
        return out

    return Plan(cells, assemble)


def run_fig1b(
    scale: ScaleProfile | None = None,
    runs: int = 10,
    policies: tuple[str, ...] = ("eager", "ca"),
    workload_name: str = "pagerank",
    k_largest: int = 8,
    aging_pin_fraction: float = 0.005,
    executor: Executor | None = None,
) -> Fig1bResult:
    """Consecutive runs on one aging machine per policy."""
    return plan_fig1b(
        scale, runs, policies, workload_name, k_largest, aging_pin_fraction
    ).run(executor)


@dataclass
class Fig1cResult:
    """Coverage-of-32 time series during one XSBench run, per policy."""

    series_by_policy: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    def coverage_at_allocation_end(self, policy: str) -> float:
        """Coverage at the moment allocation completes (before daemons)."""
        series = self.series_by_policy[policy]
        # Allocation samples carry increasing touched_pages; the steady
        # phase repeats the final value.
        peak_touch = max(t for t, _ in series)
        for touched, cov in series:
            if touched == peak_touch:
                return cov
        return series[-1][1]

    def report(self) -> str:
        rows = []
        for policy, series in self.series_by_policy.items():
            last = series[-1][1]
            rows.append(
                (policy, common.pct(series[len(series) // 2][1]), common.pct(last))
            )
        return common.format_table(("policy", "cov32(mid-run)", "cov32(end)"), rows)


def run_cell_fig1c(
    *,
    policy: str,
    workload: str,
    scale: ScaleProfile,
    steady_epochs: int,
) -> list[tuple[int, float]]:
    """One densely-sampled run on a fresh machine."""
    machine = common.native_machine(policy, scale)
    wl = common.workload(workload, scale)
    r = run_native(
        machine, wl, RunOptions(sample_every=8, steady_epochs=steady_epochs)
    )
    return [(s.touched_pages, s.coverage_32) for s in r.samples]


def plan_fig1c(
    scale: ScaleProfile | None = None,
    policies: tuple[str, ...] = ("ranger", "ca"),
    workload_name: str = "xsbench",
    steady_epochs: int = 10,
) -> Plan:
    """One independent cell per policy."""
    scale = scale or common.QUICK_SCALE
    cells = [
        cell(
            "repro.experiments.fig1:run_cell_fig1c",
            policy=policy,
            workload=workload_name,
            scale=scale,
            steady_epochs=steady_epochs,
        )
        for policy in policies
    ]

    def assemble(results) -> Fig1cResult:
        out = Fig1cResult()
        for policy, series in zip(policies, results):
            out.series_by_policy[policy] = [tuple(p) for p in series]
        return out

    return Plan(cells, assemble)


def run_fig1c(
    scale: ScaleProfile | None = None,
    policies: tuple[str, ...] = ("ranger", "ca"),
    workload_name: str = "xsbench",
    steady_epochs: int = 10,
    executor: Executor | None = None,
) -> Fig1cResult:
    """One run per policy with dense sampling."""
    return plan_fig1c(scale, policies, workload_name, steady_epochs).run(executor)


def main() -> None:  # pragma: no cover - CLI entry
    print("Fig 1b: 32-largest coverage across consecutive PageRank runs")
    print(run_fig1b().report())
    print()
    print("Fig 1c: 32-largest coverage during XSBench execution")
    print(run_fig1c().report())


if __name__ == "__main__":  # pragma: no cover
    main()
