"""Placement-policy interface and the default (Linux-like) fallback path.

A policy answers one question on every anonymous/COW/page-cache fault:
*which physical frames back this virtual region?*  The kernel handles
everything else (VMA lookup, page-table installation, contiguity-bit
maintenance, statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import OutOfMemoryError
from repro.vm.address_space import AddressSpace
from repro.vm.page_cache import CachedFile
from repro.vm.vma import Vma

if TYPE_CHECKING:  # pragma: no cover
    from repro.mm.physmem import PhysicalMemory
    from repro.sim.kernel import Kernel

#: Shared "nothing claimed" return for :meth:`PlacementPolicy.on_fault_batch`.
_EMPTY_PFNS = np.empty(0, dtype=np.int64)


@dataclass
class FaultContext:
    """Everything a policy may inspect when placing a fault."""

    space: AddressSpace
    vma: Vma
    #: Base VPN of the faulting region (huge-aligned for a 2 MiB fault).
    vpn: int
    #: Requested order: 0 (4 KiB) or HUGE_ORDER (2 MiB).
    order: int
    write: bool = True
    preferred_node: int = 0
    #: True when this is a copy-on-write break rather than a first touch.
    cow: bool = False


@dataclass
class PolicyStats:
    """Counters every policy maintains (read by the overhead model)."""

    allocations: int = 0
    targeted_hits: int = 0
    targeted_misses: int = 0
    placements: int = 0
    fallbacks: int = 0
    migrations: int = 0
    promoted_huge_pages: int = 0
    #: Pages zeroed per allocation event (drives the latency model).
    zeroed_pages_per_event: list[int] = field(default_factory=list)


class PlacementPolicy:
    """Base class: stock demand-paging placement (first free block)."""

    #: Short identifier used in results tables.
    name = "base"
    #: True when the policy backs whole VMAs at mmap time (eager paging).
    prefaults = False

    def __init__(self) -> None:
        self.mem: "PhysicalMemory | None" = None
        self.stats = PolicyStats()
        #: Installed by the kernel: ``oom_reclaim(n_pages) -> freed``
        #: evicts page-cache pages under memory pressure.
        self.oom_reclaim = None

    # -- lifecycle ---------------------------------------------------------

    def bind(self, mem: "PhysicalMemory") -> None:
        """Attach the policy to a machine's physical memory."""
        self.mem = mem

    def on_mmap(self, space: AddressSpace, vma: Vma) -> list[tuple[int, int, int]]:
        """Hook called after VMA creation.

        Returns ``(vpn, pfn, order)`` blocks to install eagerly (empty
        for demand-paging policies).
        """
        return []

    def on_munmap(self, space: AddressSpace, vma: Vma) -> None:
        """Hook called before a VMA is torn down."""

    def tick(self, kernel: "Kernel") -> None:
        """Periodic hook for asynchronous daemons (Ingens, Ranger)."""

    # -- the allocation entry points ------------------------------------------

    def allocate(self, ctx: FaultContext) -> tuple[int, int]:
        """Place one fault; returns ``(pfn, granted_order)``.

        The granted order may be lower than requested when the policy
        (or memory pressure) downgrades a huge fault to a base page.
        """
        return self._default_alloc(ctx.order, ctx.preferred_node)

    def allocate_file(self, file: CachedFile, index: int, n_pages: int) -> list[int]:
        """Place a page-cache readahead window; returns one PFN per page."""
        return [self._default_alloc(0, 0)[0] for _ in range(n_pages)]

    def on_fault_batch(self, ctx: FaultContext, vpns) -> "np.ndarray":
        """Batch-place order-0 faults for the columnar engine.

        ``vpns`` is an ascending int64 array of unmapped base VPNs; the
        policy may claim any *prefix* of it and must return the matching
        int64 PFN array (``pfns[i]`` backs ``vpns[i]``).  Contract:

        - never raise — on pressure or a placement miss, stop claiming
          and return what was claimed so far (possibly empty); the
          kernel re-drives unclaimed pages through :meth:`allocate`,
          which owns the OOM / reclaim / miss-accounting semantics;
        - claimed pages must be plain (non-placement) order-0 grants
          with per-fault accounting already applied, exactly as ``len``
          calls to :meth:`allocate` would have produced: the kernel
          charges each the base non-placed fault latency;
        - ``ctx.vpn`` equals ``vpns[0]`` and ``ctx.order`` is 0.

        The default claims nothing, which routes every fault through
        the scalar :meth:`allocate` path.
        """
        return _EMPTY_PFNS

    def _bulk_alloc_accounted(self, n: int, preferred_node: int) -> "np.ndarray":
        """Bulk order-0 grab with the same accounting as ``n`` plain
        :meth:`allocate` calls (one allocation + one zeroed page each)."""
        assert self.mem is not None, "policy not bound to a machine"
        pfns = self.mem.alloc_pages_bulk(n, preferred_node)
        got = len(pfns)
        if got:
            self.stats.allocations += got
            self.stats.zeroed_pages_per_event.extend([1] * got)
        return pfns

    # -- shared helpers -----------------------------------------------------------

    def _default_alloc(self, order: int, preferred_node: int) -> tuple[int, int]:
        """Linux-like fallback: first free block, downgrade huge on OOM,
        reclaim page cache as the last resort."""
        assert self.mem is not None, "policy not bound to a machine"
        self.stats.allocations += 1
        try:
            pfn = self.mem.alloc_block(order, preferred_node)
            self._note_zeroing(order)
            return pfn, order
        except OutOfMemoryError:
            if order > 0:
                self.stats.fallbacks += 1
                return self._alloc_base_with_reclaim(preferred_node), 0
            self._reclaim(1)
            return self._alloc_base_with_reclaim(preferred_node), 0

    def _alloc_base_with_reclaim(self, preferred_node: int) -> int:
        assert self.mem is not None
        try:
            pfn = self.mem.alloc_block(0, preferred_node)
        except OutOfMemoryError:
            self._reclaim(1)
            pfn = self.mem.alloc_block(0, preferred_node)
        self._note_zeroing(0)
        return pfn

    def _reclaim(self, n_pages: int) -> None:
        """Evict page cache under pressure (direct-reclaim analogue)."""
        if self.oom_reclaim is None:
            return
        self.oom_reclaim(n_pages)

    def _try_target(self, pfn: int, order: int) -> bool:
        """Targeted allocation with hit/miss accounting."""
        assert self.mem is not None, "policy not bound to a machine"
        if pfn < 0 or not self._target_in_range(pfn, order):
            self.stats.targeted_misses += 1
            return False
        if self.mem.alloc_target(pfn, order):
            self.stats.allocations += 1
            self.stats.targeted_hits += 1
            self._note_zeroing(order)
            return True
        self.stats.targeted_misses += 1
        return False

    def _target_in_range(self, pfn: int, order: int) -> bool:
        assert self.mem is not None
        try:
            zone = self.mem.zone_of(pfn)
        except IndexError:
            return False
        return pfn + (1 << order) <= zone.end_pfn

    def _note_zeroing(self, order: int) -> None:
        self.stats.zeroed_pages_per_event.append(1 << order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
