"""Translation Ranger: asynchronous defragmentation by page migration.

Ranger (ISCA'19) leaves the allocation path untouched (default THP
placement) and instead runs a periodic daemon that *coalesces* each
process's footprint after the fact: it picks a large free physical
region (the anchor) and migrates the process's pages into it so that
``vpn − pfn`` becomes a single offset.

Properties the experiments reproduce:

- contiguity arrives *late* (Fig. 1c): each epoch migrates a bounded
  number of pages, so a footprint coalesces over several epochs while
  CA paging has contiguity at allocation time;
- migrations have a cost (Fig. 11 shows ~3% runtime overhead), charged
  via ``stats.migrations``;
- robustness to fragmentation (Fig. 8): migration can harvest space
  that allocation-time policies no longer can;
- the multi-programmed weakness (Fig. 10): processes are scanned
  serially, and with several processes the same anchors get contended.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import FaultContext, PlacementPolicy
from repro.units import order_pages

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class RangerPaging(PlacementPolicy):
    """Default placement + periodic coalescing migrations."""

    name = "ranger"

    def __init__(self, migrations_per_epoch: int = 16384,
                 move_page_cache: bool = False):
        super().__init__()
        if migrations_per_epoch <= 0:
            raise ValueError("migrations_per_epoch must be positive")
        self.migrations_per_epoch = migrations_per_epoch
        #: Also claim and relocate page-cache frames.  Real Ranger does
        #: this; in this emulation the blind relocation destinations
        #: make it converge worse than plain same-process exchange, so
        #: it is an opt-in ablation (see EXPERIMENTS.md).
        self.move_page_cache = move_page_cache
        #: (pid, vma start) -> [(from_vpn, offset)] anchor plan, sorted
        #: by from_vpn.  Carved once per VMA from the free clusters
        #: (best-fit decreasing); epochs then migrate toward it.
        self._anchors: dict[tuple[int, int], list[tuple[int, int]]] = {}
        #: pid -> spans not yet assigned to a VMA plan (shared pool so
        #: the plans of one process's VMAs never overlap).
        self._span_pool: dict[int, list[tuple[int, int]]] = {}

    def allocate(self, ctx: FaultContext) -> tuple[int, int]:
        return self._default_alloc(ctx.order, ctx.preferred_node)

    # -- the defragmentation daemon -------------------------------------------

    def tick(self, kernel: "Kernel") -> None:
        """One defragmentation epoch: migrate up to the per-epoch budget."""
        budget = self.migrations_per_epoch
        for process in kernel.iter_processes():
            for vma in list(process.space.iter_vmas()):
                if budget <= 0:
                    return
                budget = self._coalesce_vma(kernel, process, vma, budget)

    def _coalesce_vma(self, kernel, process, vma, budget: int) -> int:
        space = process.space
        anchors = self._anchor_plan(kernel, process, vma)
        if not anchors:
            return budget
        vpn = vma.start_vpn
        while vpn < vma.end_vpn and budget > 0:
            walk = space.page_table.walk(vpn)
            if not walk.hit:
                vpn += 1
                continue
            pages = order_pages(walk.pte.order)
            offset = self._offset_for(anchors, walk.base_vpn)
            desired = walk.base_vpn - offset
            if walk.pte.pfn != desired and desired >= 0:
                if kernel.migrate(
                    process, vma, walk.base_vpn, desired, walk.pte.order
                ):
                    self.stats.migrations += pages
                    budget -= pages
                elif self._exchange(kernel, process, walk.base_vpn, desired):
                    self.stats.migrations += 2 * pages
                    budget -= 2 * pages
            vpn = walk.base_vpn + pages
        return budget

    def _anchor_plan(self, kernel, process, vma) -> list[tuple[int, int]]:
        """Carve the VMA's anchor segments once from *movable* spans.

        Ranger anchors contiguous PFN ranges regardless of current
        occupancy — anything movable (mapped pages, free frames) can be
        migrated or exchanged out of the way; only pinned frames
        (kernel reserve, hog pins) break a span.  Largest spans take
        the longest virtual ranges (best-fit decreasing).
        """
        key = (process.pid, vma.start_vpn)
        plan = self._anchors.get(key)
        if plan is not None:
            return plan
        pool = self._span_pool.get(process.pid)
        if pool is None:
            pool = sorted(
                self._claimable_spans(kernel, process),
                key=lambda s: s[1],
                reverse=True,
            )
            self._span_pool[process.pid] = pool
        plan = []
        vpn = vma.start_vpn
        remaining = vma.n_pages
        while remaining > 0 and pool:
            start_pfn, n_pages = pool.pop(0)
            span = min(remaining, n_pages)
            plan.append((vpn, vpn - start_pfn))
            if n_pages > span:
                # Return the unused tail to the pool, keeping it sorted.
                tail = (start_pfn + span, n_pages - span)
                i = 0
                while i < len(pool) and pool[i][1] > tail[1]:
                    i += 1
                pool.insert(i, tail)
            vpn += span
            remaining -= span
        self._anchors[key] = plan
        return plan

    def _claimable_spans(self, kernel, process) -> list[tuple[int, int]]:
        """Maximal PFN ranges the process's footprint can coalesce into.

        A frame is claimable when it is free, already holds one of this
        process's own pages (those swap within the span), or holds a
        page-cache page (movable: the kernel relocates it on demand);
        frames pinned by the kernel or other processes break a span.
        Spans are trimmed to 2 MiB boundaries so huge leaves keep
        their alignment.
        """
        import numpy as np

        from repro.units import HUGE_PAGES, align_up

        assert self.mem is not None
        cache_frames = (
            sorted(kernel.page_cache.frame_owner) if self.move_page_cache else []
        )
        spans: list[tuple[int, int]] = []
        for zone in self.mem.zones:
            frames = zone.frames
            claimable = frames.refcount == 0
            for run in process.space.runs:
                lo = max(run.start_pfn, zone.base_pfn) - zone.base_pfn
                hi = min(run.end_pfn, zone.end_pfn) - zone.base_pfn
                if hi > lo:
                    claimable[lo:hi] = True
            for pfn in cache_frames:
                if zone.base_pfn <= pfn < zone.end_pfn:
                    claimable[pfn - zone.base_pfn] = True
            padded = np.concatenate(([False], claimable, [False]))
            edges = np.flatnonzero(padded[1:] != padded[:-1])
            for lo, hi in zip(edges[::2], edges[1::2]):
                start = align_up(zone.base_pfn + int(lo), HUGE_PAGES)
                end = (zone.base_pfn + int(hi)) & ~(HUGE_PAGES - 1)
                if end > start:
                    spans.append((start, end - start))
        return spans

    def _exchange(self, kernel, process, vpn: int, desired_pfn: int) -> bool:
        """Clear the desired frame: equal-order swap with the process's
        own page, or relocate page-cache pages out of the block."""
        owner_vpn = kernel.owner_vpn_of_frame(process, desired_pfn)
        if owner_vpn is not None:
            return kernel.swap_mappings(process, vpn, owner_vpn)
        if not self.move_page_cache:
            return False
        walk = process.space.page_table.walk(vpn)
        if not walk.hit:
            return False
        pages = order_pages(walk.pte.order)
        moved = 0
        avoid = self._in_plan_checker(process)
        for frame in range(desired_pfn, desired_pfn + pages):
            if frame in kernel.page_cache.frame_owner:
                if not kernel.relocate_cache_page(frame, avoid=avoid):
                    return False
                moved += 1
        if not moved:
            return False
        self.stats.migrations += moved
        vma = process.space.vma_at(vpn)
        return vma is not None and kernel.migrate(
            process, vma, walk.base_vpn, desired_pfn, walk.pte.order
        )

    def _in_plan_checker(self, process):
        """Predicate: does a frame fall inside the process's plan bands?"""
        bands: list[tuple[int, int]] = []
        for (pid, vma_start), plan in self._anchors.items():
            if pid != process.pid:
                continue
            vma = process.space.vma_at(vma_start)
            end_vpn = vma.end_vpn if vma else vma_start
            for i, (from_vpn, offset) in enumerate(plan):
                until = plan[i + 1][0] if i + 1 < len(plan) else end_vpn
                bands.append((from_vpn - offset, until - offset))

        def check(pfn: int) -> bool:
            return any(lo <= pfn < hi for lo, hi in bands)

        return check

    @staticmethod
    def _offset_for(anchors: list[tuple[int, int]], vpn: int) -> int:
        """Offset of the last anchor at or before ``vpn``."""
        chosen = anchors[0][1]
        for from_vpn, offset in anchors:
            if from_vpn <= vpn:
                chosen = offset
            else:
                break
        return chosen

    def forget(self, process) -> None:
        """Drop anchors of an exited process."""
        self._anchors = {
            key: off for key, off in self._anchors.items() if key[0] != process.pid
        }
        self._span_pool.pop(process.pid, None)
