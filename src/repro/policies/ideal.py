"""Ideal paging: the offline best-fit contiguity upper bound.

The paper's *ideal paging* baseline answers "how much contiguity could
any allocator have extracted?": it applies an offline best-fit
algorithm to the contiguity map's state *before execution* and places
each VMA accordingly.  We snapshot the free clusters at first use,
reserve ranges with best-fit-decreasing bookkeeping as VMAs appear, and
then allocate strictly by target (with best-fit re-placements from the
private snapshot on failure).
"""

from __future__ import annotations

from repro.policies.base import FaultContext, PlacementPolicy
from repro.units import align_down, order_pages
from repro.vm.address_space import AddressSpace
from repro.vm.vma import Vma


class _Reservation:
    """Private free-range bookkeeping carved from the map snapshot."""

    def __init__(self) -> None:
        self.ranges: list[tuple[int, int]] = []  # (start_pfn, n_pages)

    def seed(self, snapshot: list[tuple[int, int]]) -> None:
        self.ranges = list(snapshot)

    def carve(self, n_pages: int) -> tuple[int, int] | None:
        """Best-fit: tightest range >= request, else the largest; carve it."""
        if not self.ranges:
            return None
        fitting = [r for r in self.ranges if r[1] >= n_pages]
        chosen = min(fitting, key=lambda r: r[1]) if fitting else max(
            self.ranges, key=lambda r: r[1]
        )
        self.ranges.remove(chosen)
        start, size = chosen
        granted = min(size, n_pages)
        if size > granted:
            self.ranges.append((start + granted, size - granted))
        return start, granted


class IdealPaging(PlacementPolicy):
    """Offline best-fit placement from the pre-execution map snapshot."""

    name = "ideal"

    def __init__(self) -> None:
        super().__init__()
        self._reservation = _Reservation()
        self._seeded = False

    def on_mmap(self, space: AddressSpace, vma: Vma) -> list[tuple[int, int, int]]:
        """Reserve a best-fit region for the VMA; no eager allocation."""
        self._ensure_seeded()
        remaining = vma.n_pages
        lead = 0
        while remaining > 0:
            carved = self._reservation.carve(remaining)
            if carved is None:
                break
            start, granted = carved
            vma.record_offset(vma.start_vpn + lead, vma.start_vpn + lead - start)
            lead += granted
            remaining -= granted
        return []

    def allocate(self, ctx: FaultContext) -> tuple[int, int]:
        offset = ctx.vma.pick_offset(ctx.vpn)
        if offset is not None:
            target = align_down(ctx.vpn - offset.offset, order_pages(ctx.order))
            if self._try_target(target, ctx.order):
                return target, ctx.order
        self.stats.fallbacks += 1
        return self._default_alloc(ctx.order, ctx.preferred_node)

    def _ensure_seeded(self) -> None:
        if self._seeded:
            return
        assert self.mem is not None, "policy not bound to a machine"
        snapshot: list[tuple[int, int]] = []
        for zone in self.mem.zones:
            snapshot.extend(zone.contiguity_map.snapshot())
        self._reservation.seed(snapshot)
        self._seeded = True
