"""Contiguity-aware (CA) paging — the paper's software contribution.

The policy keeps demand paging intact but steers every allocation so
that a VMA's pages land physically contiguous:

1. **First fault in a VMA** — a *placement decision*: search the
   contiguity map with the VMA size as key using the next-fit rover,
   allocate the faulting page inside the chosen cluster so the whole
   VMA would fit, and record ``Offset = vpn − pfn`` in the VMA
   (§III-C, Fig. 4).
2. **Later faults** — pick the recorded offset closest (in VA) to the
   faulting address and try the *targeted* allocation ``pfn = vpn −
   offset`` (§III-B, Fig. 2).
3. **Target unavailable** — for a 2 MiB fault, run a re-placement with
   the remaining unmapped VMA size as key and push a new offset (FIFO,
   64 max); for a 4 KiB fault, fall back to the default allocator and
   skip offset tracking (§III-C).
4. **Page cache** — readahead windows are steered with a per-file
   offset in the same way.

Re-placement is guarded by the VMA's atomic flag so concurrent faults
(multithreaded apps) trigger only one placement decision; losers retry
the existing offsets once and then fall back (§III-C).

**Reservation** (the paper's §III-D future work, implemented here as an
option): with ``reserve=True`` every placement decision records the
physical band the VMA intends to grow into, and later placement
searches skip clusters that lie inside another VMA's reservation.  This
shields contiguity when many VMAs compete for scarce free blocks, at
the cost of turning away placements that would have fit.
"""

from __future__ import annotations

import numpy as np

from repro.mm.contiguity_map import Cluster
from repro.policies.base import _EMPTY_PFNS, FaultContext, PlacementPolicy
from repro.units import HUGE_ORDER, align_down, order_pages
from repro.vm.page_cache import CachedFile


class CAPaging(PlacementPolicy):
    """Contiguity-aware paging.

    Parameters
    ----------
    placement:
        Contiguity-map search policy: ``"next_fit"`` (paper default),
        ``"first_fit"`` or ``"best_fit"`` (ablations).
    track_4k_offsets:
        When True, even 4 KiB placement failures trigger re-placement
        (the paper restricts re-placement to huge faults; ablation).
    """

    name = "ca"

    def __init__(
        self,
        placement: str = "next_fit",
        track_4k_offsets: bool = False,
        reserve: bool = False,
    ):
        super().__init__()
        if placement not in ("next_fit", "first_fit", "best_fit"):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.placement = placement
        self.track_4k_offsets = track_4k_offsets
        self.reserve = reserve
        #: vma id -> list of reserved (start_pfn, end_pfn) bands.
        self._reservations: dict[int, list[tuple[int, int]]] = {}

    # -- anonymous / COW faults ---------------------------------------------

    def allocate(self, ctx: FaultContext) -> tuple[int, int]:
        vma = ctx.vma
        offset = vma.pick_offset(ctx.vpn)
        if offset is None:
            # First fault in the VMA: full placement decision.
            placed = self._place(ctx, key_pages=vma.n_pages)
            if placed is not None:
                return placed
            self.stats.fallbacks += 1
            return self._default_alloc(ctx.order, ctx.preferred_node)

        target = ctx.vpn - offset.offset
        if self._order_aligned(target, ctx.order) and self._try_target(target, ctx.order):
            return target, ctx.order

        # Unsuccessful CA allocation (paper §III-C).
        if ctx.order == HUGE_ORDER or self.track_4k_offsets:
            if vma.try_begin_replacement():
                try:
                    placed = self._place(ctx, key_pages=max(vma.unmapped_pages, 1))
                    if placed is not None:
                        return placed
                finally:
                    vma.end_replacement()
            else:
                # A concurrent fault is re-placing: retry the freshest
                # offset once, then fall back (option (ii) in §III-C,
                # collapsed to one retry in this serial emulation).
                retry = vma.pick_offset(ctx.vpn)
                if retry is not offset:
                    target = ctx.vpn - retry.offset
                    if self._order_aligned(target, ctx.order) and self._try_target(
                        target, ctx.order
                    ):
                        return target, ctx.order
        self.stats.fallbacks += 1
        return self._default_alloc(ctx.order, ctx.preferred_node)

    def on_fault_batch(self, ctx: FaultContext, vpns):
        """Columnar engine: claim the streak of successful targeted grabs.

        Targets are computed for the whole batch at once (nearest
        recorded offset per fault, same first-minimum tie-break as
        :meth:`Vma.pick_offset`), then claimed in order until the first
        target that is out of range or occupied — that fault and the
        rest of the batch go back through :meth:`allocate`, which owns
        the miss accounting and the re-placement decision.
        """
        vma = ctx.vma
        if not vma.offsets:
            return _EMPTY_PFNS  # first fault: placement decision is scalar
        assert self.mem is not None
        fault_vpns = np.array([o.fault_vpn for o in vma.offsets], dtype=np.int64)
        offs = np.array([o.offset for o in vma.offsets], dtype=np.int64)
        picks = np.abs(vpns[:, None] - fault_vpns[None, :]).argmin(axis=1)
        targets = vpns - offs[picks]
        out = np.empty(len(vpns), dtype=np.int64)
        got = 0
        stats = self.stats
        for target in targets.tolist():
            if (
                target < 0
                or not self._target_in_range(target, 0)
                or not self.mem.alloc_target(target, 0)
            ):
                break  # no accounting here: allocate() re-drives this fault
            stats.allocations += 1
            stats.targeted_hits += 1
            self._note_zeroing(0)
            out[got] = target
            got += 1
        return out[:got]

    # -- page-cache readahead -------------------------------------------------

    def allocate_file(self, file: CachedFile, index: int, n_pages: int) -> list[int]:
        """Steer readahead frames with the per-file offset (§III-C)."""
        pfns: list[int] = []
        for i in range(n_pages):
            idx = index + i
            target = -1 if file.ca_offset is None else idx - file.ca_offset
            if target >= 0 and self._try_target(target, 0):
                pfns.append(target)
                continue
            placed = self._place_file(file, idx)
            if placed is None:
                self.stats.fallbacks += 1
                placed, _ = self._default_alloc(0, 0)
            pfns.append(placed)
        return pfns

    def _place_file(self, file: CachedFile, index: int) -> int | None:
        cluster, zone = self._search(file.n_pages, preferred_node=0)
        if cluster is None:
            return None
        # Files sit at the *tail* of the cluster: anonymous VMA bands
        # grow upward from cluster starts, so tail placement keeps
        # long-lived page-cache pages out of their growth path when a
        # wrapped next-fit search reuses a partially consumed cluster.
        remaining = file.n_pages - index
        target = max(cluster.start_pfn, cluster.end_pfn - remaining)
        if self._try_target(target, 0):
            self.stats.placements += 1
            file.ca_offset = index - target
            return target
        return None

    # -- placement decisions ------------------------------------------------------

    def _place(self, ctx: FaultContext, key_pages: int) -> tuple[int, int] | None:
        """Run a placement decision; returns the allocation or None."""
        cluster, zone = self._search(
            key_pages, ctx.preferred_node, vma_key=id(ctx.vma)
        )
        if cluster is None:
            return None
        target = self._position(
            cluster, wanted_lead=ctx.vpn - ctx.vma.start_vpn, order=ctx.order
        )
        if not self._try_target(target, ctx.order):
            # The cluster shrank between search and allocation (can
            # happen when another VMA raced the same block): fall back.
            return None
        self.stats.placements += 1
        ctx.vma.record_offset(ctx.vpn, ctx.vpn - target)
        if self.reserve:
            offset = ctx.vpn - target
            band_end = min(cluster.end_pfn, ctx.vma.end_vpn - offset)
            self._reservations.setdefault(id(ctx.vma), []).append(
                (target, max(target + (1 << ctx.order), band_end))
            )
        return target, ctx.order

    def on_munmap(self, space, vma) -> None:
        """Release the VMA's reservations (if any)."""
        self._reservations.pop(id(vma), None)

    def _reserved_by_other(self, cluster: Cluster, vma_key: int | None) -> bool:
        """Does the cluster sit inside another VMA's reserved band?"""
        if not self.reserve:
            return False
        for key, bands in self._reservations.items():
            if key == vma_key:
                continue
            for start, end in bands:
                if cluster.start_pfn < end and cluster.end_pfn > start:
                    return True
        return False

    def _search(self, key_pages: int, preferred_node: int,
                vma_key: int | None = None):
        """Search per-node contiguity maps, preferring the local node.

        Next-fit searches run in two passes: first without wrapping the
        rover (across nodes in preference order), so that clusters
        recently handed to other placements are reconsidered only when
        nothing ahead of any rover fits — this is what defers racing
        between VMAs (§III-C).  With reservation enabled, clusters
        inside another VMA's reserved band are skipped (bounded
        retries).
        """
        assert self.mem is not None
        if self.placement == "next_fit":
            for zone in self.mem.iter_zones_from(preferred_node):
                for _ in range(max(1, len(zone.contiguity_map))):
                    cluster = zone.contiguity_map.next_fit(key_pages, wrap=False)
                    if cluster is None:
                        break
                    if not self._reserved_by_other(cluster, vma_key):
                        return cluster, zone
        best: tuple[Cluster, object] | None = None
        for zone in self.mem.iter_zones_from(preferred_node):
            cluster = zone.place(key_pages, policy=self.placement)
            if cluster is None or self._reserved_by_other(cluster, vma_key):
                continue
            if cluster.n_pages >= key_pages:
                return cluster, zone
            if best is None or cluster.n_pages > best[0].n_pages:
                best = (cluster, zone)
        return best if best is not None else (None, None)

    @staticmethod
    def _position(cluster: Cluster, wanted_lead: int, order: int) -> int:
        """Pick the target frame inside a cluster.

        Ideally the VMA start aligns with the cluster start so the whole
        area fits (``target = start + lead``).  When the cluster cannot
        hold the lead, the faulting page goes to the cluster *start*
        instead, so the following virtual addresses extend forward into
        the cluster (sub-VMA placement).
        """
        block = order_pages(order)
        ideal = cluster.start_pfn + wanted_lead
        if ideal + block <= cluster.end_pfn:
            return align_down(ideal, block)
        return align_down(cluster.start_pfn, block)

    @staticmethod
    def _order_aligned(pfn: int, order: int) -> bool:
        return pfn >= 0 and pfn % order_pages(order) == 0
