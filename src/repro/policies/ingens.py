"""Ingens-style asynchronous huge-page management.

Ingens (OSDI'16) decouples huge-page promotion from the fault path:
faults are served with base pages, and a background thread promotes a
2 MiB region to a huge page only once its *utilization* (fraction of
its 512 base pages actually touched) crosses a threshold (90% in the
paper).  Promotion allocates a fresh huge block and migrates the
resident base pages into it.

Consequences the experiments reproduce:

- contiguity is still capped at 2 MiB, so Ingens tracks default THP in
  Figs. 7/8/12,
- bloat is *lower* than THP (Table VI) because sparsely used regions
  are never promoted,
- promotions cost migrations, visible in the software-overhead model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import OutOfMemoryError
from repro.policies.base import FaultContext, PlacementPolicy
from repro.units import HUGE_ORDER, HUGE_PAGES

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

#: Fraction of a 2 MiB region that must be resident before promotion.
DEFAULT_UTIL_THRESHOLD = 0.9


class IngensPaging(PlacementPolicy):
    """Base pages on the fault path + async utilization-based promotion."""

    name = "ingens"

    def __init__(self, util_threshold: float = DEFAULT_UTIL_THRESHOLD):
        super().__init__()
        if not 0.0 < util_threshold <= 1.0:
            raise ValueError(f"util_threshold must be in (0, 1], got {util_threshold}")
        self.util_threshold = util_threshold
        # Ingens' utilization tracking: base-page fault counts per
        # (address space, 2M region), maintained on the fault path so
        # the daemon never scans whole footprints.
        self._util: dict[tuple[int, int], int] = {}

    def allocate(self, ctx: FaultContext) -> tuple[int, int]:
        """Serve every fault with a base page (no sync huge faults)."""
        region = ctx.vpn - ctx.vpn % HUGE_PAGES
        key = (id(ctx.space), region)
        self._util[key] = self._util.get(key, 0) + 1
        return self._default_alloc(0, ctx.preferred_node)

    def on_fault_batch(self, ctx: FaultContext, vpns):
        """Columnar engine: bulk base-page grab + array-reduced util counts.

        ``np.unique`` on the ascending VPN batch yields regions in
        first-fault order, so ``_util``'s dict insertion order — which
        the promotion pass observes — matches the scalar path exactly.
        """
        pfns = self._bulk_alloc_accounted(len(vpns), ctx.preferred_node)
        got = len(pfns)
        if got:
            regions, counts = np.unique(
                vpns[:got] - vpns[:got] % HUGE_PAGES, return_counts=True
            )
            space_id = id(ctx.space)
            util = self._util
            for region, count in zip(regions.tolist(), counts.tolist()):
                key = (space_id, region)
                util[key] = util.get(key, 0) + count
        return pfns

    def tick(self, kernel: "Kernel") -> None:
        """Background promotion pass (called periodically by the kernel)."""
        need = int(self.util_threshold * HUGE_PAGES)
        candidates = [key for key, count in self._util.items() if count >= need]
        for key in candidates:
            space_id, region = key
            promoted = self._consider_region(kernel, space_id, region)
            if promoted:
                del self._util[key]

    # -- promotion ---------------------------------------------------------

    def _consider_region(self, kernel: "Kernel", space_id: int, region: int) -> bool:
        for process in kernel.iter_processes():
            if id(process.space) != space_id:
                continue
            vma = process.space.vma_at(region)
            if vma is None or region + HUGE_PAGES > vma.end_vpn:
                return True  # stale candidate: drop it
            walk = process.space.page_table.walk(region)
            if walk.hit and walk.pte.huge:
                return True  # already huge
            if kernel.engine == "fast":
                # The runs mirror the page table exactly, so counting
                # covered pages replaces 512 per-page walks.
                n_resident = process.space.runs.covered_pages(
                    region, region + HUGE_PAGES
                )
            elif kernel.engine == "columnar":
                # Present-bitmap popcount over the region slice.
                n_resident = process.space.region_resident_pages(
                    vma, region, region + HUGE_PAGES
                )
            else:
                n_resident = len(self._resident_pages(process.space, region))
            if n_resident >= int(self.util_threshold * HUGE_PAGES):
                self._promote_region(kernel, process, vma, region, n_resident)
                return True
            return False
        return True  # owner exited: drop

    def _resident_pages(self, space, region: int) -> list[int]:
        return [
            vpn
            for vpn in range(region, region + HUGE_PAGES)
            if space.is_mapped(vpn)
        ]

    def _promote_region(self, kernel, process, vma, region: int, n_resident: int) -> None:
        assert self.mem is not None
        try:
            new_pfn = self.mem.alloc_block(HUGE_ORDER, kernel.node_of(process))
        except OutOfMemoryError:
            return
        self.stats.allocations += 1
        self._note_zeroing(HUGE_ORDER)
        kernel.remap_region_huge(process, vma, region, new_pfn)
        self.stats.migrations += n_resident
        self.stats.promoted_huge_pages += 1
