"""Page-frame placement policies.

Each policy decides where a demand-paging fault's frames come from.
The kernel (:mod:`repro.sim.kernel`) drives the fault path and calls
the active policy; all policies share the interface in
:mod:`repro.policies.base`.

- :class:`~repro.policies.default_thp.DefaultPaging` — stock Linux
  behaviour: first free block of the requested order (THP-aware),
- :class:`~repro.policies.ca.CAPaging` — the paper's contribution,
- :class:`~repro.policies.eager.EagerPaging` — RMM-style whole-VMA
  pre-allocation with a raised MAX_ORDER,
- :class:`~repro.policies.ingens.IngensPaging` — utilization-based
  asynchronous huge-page promotion,
- :class:`~repro.policies.ranger.RangerPaging` — Translation Ranger:
  asynchronous defragmentation by page migration,
- :class:`~repro.policies.ideal.IdealPaging` — offline best-fit upper
  bound on contiguity.
"""

from repro.policies.base import FaultContext, PlacementPolicy
from repro.policies.ca import CAPaging
from repro.policies.default_thp import DefaultPaging
from repro.policies.eager import EagerPaging
from repro.policies.ideal import IdealPaging
from repro.policies.ingens import IngensPaging
from repro.policies.ranger import RangerPaging

__all__ = [
    "CAPaging",
    "DefaultPaging",
    "EagerPaging",
    "FaultContext",
    "IdealPaging",
    "IngensPaging",
    "PlacementPolicy",
    "RangerPaging",
]


def make_policy(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a policy by its short name (used by experiments/CLI)."""
    registry = {
        "default": DefaultPaging,
        "thp": DefaultPaging,
        "ca": CAPaging,
        "eager": EagerPaging,
        "ingens": IngensPaging,
        "ranger": RangerPaging,
        "ideal": IdealPaging,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)
