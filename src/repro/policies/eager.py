"""Eager paging: whole-VMA pre-allocation (the RMM baseline).

Eager paging abandons demand paging: at ``mmap`` time it backs the
entire VMA with the largest free aligned blocks the buddy allocator can
provide.  To make those blocks big, the baseline raises the kernel's
MAX_ORDER (the machine is built with a larger ``max_order`` when this
policy is selected — see ``SystemConfig.for_policy``).

This reproduces both of the paper's criticisms:

- *external fragmentation sensitivity* (Figs. 1b, 8): eager needs big
  **aligned** blocks, and those disappear as memory fragments, while CA
  harvests unaligned runs of smaller blocks;
- *bloat and tail latency* (Tables V, VI): the whole VMA is allocated
  (and zeroed) up front whether the application touches it or not.
"""

from __future__ import annotations

from repro.errors import OutOfMemoryError
from repro.policies.base import FaultContext, PlacementPolicy
from repro.units import order_pages
from repro.vm.address_space import AddressSpace
from repro.vm.vma import Vma


class EagerPaging(PlacementPolicy):
    """Pre-allocate every VMA at creation time."""

    name = "eager"
    prefaults = True

    def on_mmap(self, space: AddressSpace, vma: Vma) -> list[tuple[int, int, int]]:
        """Back the whole VMA with maximal aligned blocks immediately."""
        assert self.mem is not None
        blocks: list[tuple[int, int, int]] = []
        vpn = vma.start_vpn
        remaining = vma.n_pages
        while remaining > 0:
            order = self._largest_order(vpn, remaining)
            pfn, got = self._alloc_shrinking(order)
            if pfn is None:
                raise OutOfMemoryError(
                    f"eager paging cannot back VMA {vma.name!r} "
                    f"({remaining} pages short)"
                )
            blocks.append((vpn, pfn, got))
            vpn += order_pages(got)
            remaining -= order_pages(got)
        return blocks

    def allocate(self, ctx: FaultContext) -> tuple[int, int]:
        """Demand faults only remain for COW breaks under eager paging."""
        return self._default_alloc(ctx.order, ctx.preferred_node)

    # -- helpers -----------------------------------------------------------

    def _largest_order(self, vpn: int, remaining: int) -> int:
        """Largest order that keeps the block VA-aligned and inside the VMA."""
        assert self.mem is not None
        order = min(self.mem.max_order, remaining.bit_length() - 1)
        while order > 0 and (vpn % order_pages(order) or order_pages(order) > remaining):
            order -= 1
        return order

    def _alloc_shrinking(self, order: int) -> tuple[int | None, int]:
        """Allocate at ``order``, halving on OOM (external fragmentation)."""
        assert self.mem is not None
        while order >= 0:
            try:
                pfn = self.mem.alloc_block(order)
                self.stats.allocations += 1
                self._note_zeroing(order)
                return pfn, order
            except OutOfMemoryError:
                self.stats.fallbacks += 1
                order -= 1
        # Even base pages are gone: reclaim page cache and retry once.
        self._reclaim(1)
        try:
            pfn = self.mem.alloc_block(0)
        except OutOfMemoryError:
            return None, 0
        self.stats.allocations += 1
        self._note_zeroing(0)
        return pfn, 0
