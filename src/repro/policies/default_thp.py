"""Default paging with transparent huge pages (the stock Linux baseline).

Placement is whatever the buddy allocator hands out first — on an aged
machine (randomized free lists) that scatters a footprint across
physical memory, which is exactly why the paper's Figs. 7/8/12 show
thousands of mappings for this baseline.  All THP decisions (whether a
fault is 2 MiB) are made by the kernel; the policy only allocates.
"""

from __future__ import annotations

from repro.policies.base import FaultContext, PlacementPolicy


class DefaultPaging(PlacementPolicy):
    """Stock demand paging: first available block, no steering."""

    name = "thp"

    def allocate(self, ctx: FaultContext) -> tuple[int, int]:
        return self._default_alloc(ctx.order, ctx.preferred_node)

    def on_fault_batch(self, ctx: FaultContext, vpns):
        """Columnar engine: one bulk buddy grab for the whole stretch."""
        return self._bulk_alloc_accounted(len(vpns), ctx.preferred_node)
