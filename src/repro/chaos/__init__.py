"""Deterministic fault injection and the injectable clock.

See ``docs/robustness.md`` for the site/recovery contract and
:mod:`repro.chaos.soak` for the end-to-end determinism-under-fault
check (``repro chaos-soak``).
"""

from repro.chaos.clock import CLOCK, Clock, FakeClock
from repro.chaos.faults import SITES, FaultInjector, FaultPlan, FaultRecord

__all__ = [
    "CLOCK",
    "Clock",
    "FakeClock",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
]
