"""Injectable monotonic clock: real time by default, fakeable in tests.

The serve layer's timeouts and the executor's retry backoff all read
time through a :class:`Clock`, so tests (and the chaos suite) can
substitute a :class:`FakeClock` and drive timeouts by *advancing* time
instead of sleeping — a read-timeout test completes in microseconds and
never flakes on a slow CI machine.

``Clock`` is the real implementation; the module-level :data:`CLOCK`
instance is the default everywhere a clock parameter is optional.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, Awaitable


class Clock:
    """Real time: thin veneer over ``time`` and ``asyncio``."""

    def monotonic(self) -> float:
        return time.monotonic()

    def wall(self) -> float:
        return time.time()

    def sleep_sync(self, seconds: float) -> None:
        """Blocking sleep (executor threads; never the event loop)."""
        if seconds > 0:
            time.sleep(seconds)

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    async def wait_for(self, awaitable: Awaitable, timeout: float) -> Any:
        """``asyncio.wait_for`` against this clock."""
        return await asyncio.wait_for(awaitable, timeout)


#: Shared default clock.
CLOCK = Clock()


class FakeClock(Clock):
    """Manually advanced clock for deterministic timeout tests.

    ``monotonic()``/``wall()`` return the fake time; :meth:`advance`
    moves it forward and wakes every :meth:`sleep`/:meth:`wait_for`
    waiter whose deadline has passed.  ``advance`` must be called from
    the event-loop thread (tests drive it from the test coroutine).
    """

    def __init__(self, start: float = 1000.0):
        self._now = start
        self._waiters: list[tuple[float, asyncio.Future]] = []

    def monotonic(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._now

    def sleep_sync(self, seconds: float) -> None:
        """A thread "sleeping" on fake time just observes the jump."""
        self._now += max(0.0, seconds)

    @property
    def pending(self) -> int:
        """Waiters currently parked on this clock (tests poll this to
        know the code under test has reached its timeout wait)."""
        return sum(1 for _, fut in self._waiters if not fut.done())

    def advance(self, seconds: float) -> None:
        self._now += seconds
        due = [fut for deadline, fut in self._waiters
               if deadline <= self._now and not fut.done()]
        self._waiters = [(deadline, fut) for deadline, fut in self._waiters
                         if deadline > self._now and not fut.done()]
        for fut in due:
            fut.set_result(None)

    def _park(self, deadline: float) -> asyncio.Future:
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append((deadline, fut))
        return fut

    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        await self._park(self._now + seconds)

    async def wait_for(self, awaitable: Awaitable, timeout: float) -> Any:
        task = asyncio.ensure_future(awaitable)
        timer = self._park(self._now + timeout)
        try:
            done, _ = await asyncio.wait(
                {task, timer}, return_when=asyncio.FIRST_COMPLETED
            )
            if task in done:
                return task.result()
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
            raise asyncio.TimeoutError(
                f"fake clock timeout after {timeout}s"
            )
        finally:
            if not timer.done():
                timer.cancel()
