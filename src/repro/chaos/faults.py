"""Deterministic, seeded fault injection for the distributed pieces.

A :class:`FaultPlan` names **injection sites** — fixed points in the
cache, executor and serve layers where a failure can be simulated —
with a per-site firing probability and a seed.  A :class:`FaultInjector`
evaluates the plan at runtime and keeps a trace of every fired fault
plus the recovery action the hardened code took.

Decisions are **hash-based, not sequential**: whether a fault fires at
``(site, token)`` is a pure function of ``(seed, site, token)``, so the
outcome does not depend on thread scheduling, pool harvest order or how
many other sites fired first.  Same seed and same work ⇒ same faults,
which is what makes ``repro chaos-soak`` reproducible and lets the
differential tests assert byte-identical results under fault load.

Sites (see ``docs/robustness.md`` for the recovery contract of each):

==============  =====================================================
``cache.read``  the entry being read is corrupted on disk first, so
                the real quarantine path runs (evict + miss + recount)
``cache.write`` the store is dropped as if the disk write failed
``pool.submit`` the whole worker pool "breaks" at submit time
                (BrokenProcessPool analogue) — batch retried serially
``pool.worker`` one worker "crashes" before delivering its cell —
                bounded retry with exponential backoff
``serve.accept`` the server drops the connection before reading —
                clients retry
``serve.body``  the request body "stalls" — the server answers 408
                instead of hanging
``clock``       the backoff clock "jumps" past its deadline — the
                retry proceeds without the real wait
==============  =====================================================

Every injector method is thread-safe; callers guard hooks with
``if injector is not None`` so the disabled path costs one attribute
load and a branch.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Every valid injection site, in canonical order.
SITES: tuple[str, ...] = (
    "cache.read",
    "cache.write",
    "pool.submit",
    "pool.worker",
    "serve.accept",
    "serve.body",
    "clock",
)


def _hash01(seed: int, site: str, token: str) -> float:
    """Uniform [0, 1) value, a pure function of (seed, site, token)."""
    digest = hashlib.sha256(f"{seed}|{site}|{token}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Per-site firing probabilities plus the seed that drives them."""

    probabilities: tuple[tuple[str, float], ...] = ()
    seed: int = 0

    def __post_init__(self):
        for site, p in self.probabilities:
            if site not in SITES:
                raise ConfigError(
                    f"unknown fault site {site!r}; choose from {SITES}"
                )
            if not 0.0 <= p <= 1.0:
                raise ConfigError(
                    f"fault probability for {site!r} must be in [0, 1], "
                    f"got {p}"
                )

    @classmethod
    def uniform(cls, p: float, seed: int = 0,
                sites: tuple[str, ...] = SITES) -> "FaultPlan":
        """One probability applied to every (listed) site."""
        return cls(tuple((site, p) for site in sites), seed=seed)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI plan spec.

        Either a bare probability applied to all sites (``"0.2"``) or a
        comma list of ``site=p`` entries
        (``"cache.read=0.1,pool.worker=0.3"``).
        """
        spec = str(spec).strip()
        if not spec:
            raise ConfigError("empty fault plan spec")
        if "=" not in spec:
            try:
                p = float(spec)
            except ValueError:
                raise ConfigError(
                    f"fault plan must be a probability or site=p list, "
                    f"got {spec!r}"
                ) from None
            return cls.uniform(p, seed=seed)
        entries = []
        for item in spec.split(","):
            site, sep, value = item.partition("=")
            site = site.strip()
            if not sep:
                raise ConfigError(f"bad fault plan entry {item!r}")
            try:
                p = float(value)
            except ValueError:
                raise ConfigError(
                    f"bad probability in fault plan entry {item!r}"
                ) from None
            entries.append((site, p))
        return cls(tuple(entries), seed=seed)

    def p(self, site: str) -> float:
        """The firing probability configured for ``site`` (0 if unset)."""
        for name, p in self.probabilities:
            if name == site:
                return p
        return 0.0

    def as_dict(self) -> dict:
        return {"seed": self.seed, "probabilities": dict(self.probabilities)}


@dataclass
class FaultRecord:
    """One fired fault and (eventually) the recovery that answered it."""

    seq: int
    site: str
    token: str
    recovered: str | None = None

    def as_dict(self) -> dict:
        return {"seq": self.seq, "site": self.site, "token": self.token,
                "recovered": self.recovered}


class FaultInjector:
    """Evaluates a :class:`FaultPlan` and keeps the fault trace.

    One injector is shared by every instrumented layer of a run (cache,
    executor, scheduler, server), so the trace is the single source of
    truth for "what failed and how it was handled".
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._records: list[FaultRecord] = []

    # -- decisions ----------------------------------------------------

    def decide(self, site: str, token: str) -> bool:
        """Would a fault fire at ``(site, token)``?  No side effects."""
        p = self.plan.p(site)
        if p <= 0.0:
            return False
        return _hash01(self.plan.seed, site, token) < p

    def fire(self, site: str, token: str) -> FaultRecord | None:
        """Evaluate the site; record and return a fault if it fires."""
        if not self.decide(site, token):
            return None
        with self._lock:
            record = FaultRecord(seq=len(self._records), site=site,
                                 token=token)
            self._records.append(record)
        return record

    def recover(self, record: FaultRecord, action: str) -> None:
        """Mark the recovery action the hardened code took."""
        record.recovered = action

    # -- reporting ----------------------------------------------------

    @property
    def records(self) -> list[FaultRecord]:
        with self._lock:
            return list(self._records)

    def fired_by_site(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.site] = counts.get(record.site, 0) + 1
        return counts

    def recovered_by_site(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            if record.recovered is not None:
                counts[record.site] = counts.get(record.site, 0) + 1
        return counts

    def unrecovered(self) -> list[FaultRecord]:
        """Fired faults no recovery path has claimed — each one a bug."""
        return [r for r in self.records if r.recovered is None]

    def trace(self) -> list[dict]:
        """Canonical trace: records sorted by (site, token), so two
        runs with the same seed compare equal even when concurrency
        reordered the firing sequence."""
        return [r.as_dict() for r in
                sorted(self.records, key=lambda r: (r.site, r.token))]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(seed={self.plan.seed}, "
                f"fired={len(self.records)}, "
                f"unrecovered={len(self.unrecovered())})")
