"""``repro chaos-soak``: prove determinism-under-fault end to end.

The soak runs a small experiment grid four times against one shared
run-cache directory:

1. **clean cold** — compute everything, populate the cache;
2. **chaos A** — same grid under a :class:`~repro.chaos.FaultPlan`:
   cache reads corrupt entries, workers crash, pools break, backoff
   clocks jump;
3. **clean repair** — recompute whatever the chaos pass lost (dropped
   cache writes), restoring the warm state;
4. **chaos B** — the chaos pass again with a *fresh injector* built
   from the same plan and seed.

It then asserts the three properties the chaos layer exists to
guarantee:

- **byte-identical results**: the canonical JSON of every pass matches
  the clean run exactly — injected failures may cost time, never
  correctness;
- **no unanswered faults**: every fired fault carries a recovery
  action in the trace (a fault nobody recovered is a bug, and the soak
  fails);
- **reproducibility**: chaos A and chaos B produce the same canonical
  fault trace — same seed ⇒ same faults ⇒ same recoveries.

With ``serve=True`` it additionally boots the HTTP server with
``serve.accept``/``serve.body`` faults active and checks that a
retrying client still obtains byte-identical, clean-matching bodies —
for plain runs *and* for ``POST /v1/sweep``: a mid-sweep worker crash
or cache fault must still yield the byte-identical frontier a clean
local sweep of the same grid produces.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.chaos.faults import FaultInjector, FaultPlan

#: Grid used by ``chaos-soak --quick`` (cheap but multi-experiment,
#: with cells shared across sibling experiments).
QUICK_EXPERIMENTS = ("fig9", "table1")

#: Default (non-quick) soak grid.
DEFAULT_EXPERIMENTS = ("fig1", "fig7", "fig9", "table1")

#: Sweep posted during the serve phase (small but multi-cell: 8 grid
#: points over 2 shared native+sim cell pairs).
SOAK_SWEEP_SPEC = {
    "policies": ["thp", "ca"],
    "workloads": ["svm"],
    "trace_len": 10_000,
}


def _canonical_trace(injector: FaultInjector) -> list[tuple]:
    """Order-independent trace signature for cross-run comparison."""
    return sorted(
        (r.site, r.token, r.recovered) for r in injector.records
    )


def _run_grid(experiments: Sequence[str], scale_name: str, jobs: int,
              cache_dir: Path, injector: FaultInjector | None
              ) -> tuple[bytes, dict]:
    """One grid pass; returns (canonical result bytes, stats dict)."""
    import dataclasses

    from repro.cli import SCALES, suite_plans
    from repro.experiments.serialize import to_jsonable
    from repro.sim.cache import RunCache
    from repro.sim.jobs import Executor, run_plans

    cache = RunCache(cache_dir, injector=injector)
    executor = Executor(jobs=jobs, cache=cache, injector=injector,
                        max_attempts=6, backoff_base=0.01)
    entries = suite_plans(SCALES[scale_name], list(experiments))
    results = run_plans([plan for _, _, plan in entries], executor)
    payload = {
        key: to_jsonable(result)
        for (_, key, _), result in zip(entries, results)
    }
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()
    stats = dataclasses.asdict(executor.stats)
    stats["cache"] = {
        "hits": cache.hits, "misses": cache.misses,
        "corrupt_evictions": cache.corrupt_evictions,
        "write_failures": cache.write_failures,
    }
    return body, stats


def _clean_sweep(scale_name: str, jobs: int, cache_dir: Path) -> bytes:
    """The fault-free canonical bytes of the soak sweep grid."""
    from repro.sim.cache import RunCache
    from repro.sim.jobs import Executor
    from repro.sweep.grid import SweepSpec
    from repro.sweep.runner import run_sweep

    spec = SweepSpec.from_request(dict(SOAK_SWEEP_SPEC, scale=scale_name))
    executor = Executor(jobs=jobs, cache=RunCache(cache_dir))
    try:
        outcome, _stats, _run = run_sweep(spec, executor)
    finally:
        executor.close()
    return json.dumps(outcome, sort_keys=True,
                      separators=(",", ":")).encode()


def _serve_phase(experiment: str, scale_name: str, cache_dir: Path,
                 injector: FaultInjector, attempts: int = 8) -> dict:
    """Boot the HTTP server under serve faults; drive it with a
    retrying client; report whether service stayed correct."""
    from repro.serve.client import ServeClient, ServeError
    from repro.serve.server import ReproServer
    from repro.sim.cache import RunCache

    loop = asyncio.new_event_loop()
    server = ReproServer(
        port=0, workers=1,
        cache=RunCache(cache_dir, injector=injector),
        injector=injector,
    )
    ready = threading.Event()

    def _serve() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=_serve, name="chaos-soak-serve",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):  # pragma: no cover - startup hang
        raise RuntimeError("chaos-soak server failed to start")
    out: dict = {"experiment": experiment, "attempts_budget": attempts}
    try:
        client = ServeClient(port=server.port, timeout=120)
        responses = []
        for _ in range(2):
            responses.append(client.run_with_retries(
                experiment, scale=scale_name, attempts=attempts
            ))
        out["statuses"] = [r.status for r in responses]
        out["bodies_identical"] = responses[0].body == responses[1].body
        out["body"] = responses[0].body
        # Sweep endpoint under the same faults: a mid-sweep worker
        # crash or cache fault must not change a byte of the frontier.
        sweep_spec = dict(SOAK_SWEEP_SPEC, scale=scale_name)
        sweeps = [
            client.sweep_with_retries(sweep_spec, attempts=attempts)
            for _ in range(2)
        ]
        out["sweep_statuses"] = [r.status for r in sweeps]
        out["sweep_bodies_identical"] = sweeps[0].body == sweeps[1].body
        out["sweep_body"] = sweeps[0].body
        out["ok"] = (all(r.status == 200 for r in responses + sweeps)
                     and out["bodies_identical"]
                     and out["sweep_bodies_identical"])
    except ServeError as exc:
        out["ok"] = False
        out["error"] = str(exc)
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
    return out


def run_soak(scale: str = "quick",
             experiments: Sequence[str] | None = None,
             plan_spec: str = "0.2", seed: int = 0, jobs: int = 2,
             serve: bool = True, cache_dir: str | Path | None = None,
             quick: bool = False) -> dict:
    """Run the full soak; returns a JSON-ready report (``report["ok"]``
    is the pass/fail verdict the CLI turns into an exit code)."""
    import tempfile

    started = time.time()
    if experiments is None:
        experiments = QUICK_EXPERIMENTS if quick else DEFAULT_EXPERIMENTS
    plan = FaultPlan.parse(plan_spec, seed=seed)
    report: dict = {
        "scale": scale,
        "experiments": list(experiments),
        "plan": plan.as_dict(),
        "jobs": jobs,
    }
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as td:
        root = Path(cache_dir) if cache_dir is not None else Path(td)
        grid_dir = root / "soak-cache"

        clean_bytes, clean_stats = _run_grid(
            experiments, scale, jobs, grid_dir, injector=None
        )
        report["clean_stats"] = clean_stats

        injector_a = FaultInjector(plan)
        try:
            chaos_a_bytes, stats_a = _run_grid(
                experiments, scale, jobs, grid_dir, injector_a
            )
        except Exception as exc:  # noqa: BLE001 - the soak's whole point
            report["error"] = f"chaos pass A raised {type(exc).__name__}: {exc}"
            report["ok"] = False
            report["wall_seconds"] = round(time.time() - started, 3)
            return report
        report["chaos_a_stats"] = stats_a

        # Repair: recompute entries the chaos pass lost to dropped
        # writes, restoring the warm cache so pass B sees pass A's
        # starting state and the traces are comparable.
        _run_grid(experiments, scale, jobs, grid_dir, injector=None)

        injector_b = FaultInjector(FaultPlan.parse(plan_spec, seed=seed))
        try:
            chaos_b_bytes, stats_b = _run_grid(
                experiments, scale, jobs, grid_dir, injector_b
            )
        except Exception as exc:  # noqa: BLE001
            report["error"] = f"chaos pass B raised {type(exc).__name__}: {exc}"
            report["ok"] = False
            report["wall_seconds"] = round(time.time() - started, 3)
            return report
        report["chaos_b_stats"] = stats_b

        report["identical_grid"] = (
            clean_bytes == chaos_a_bytes == chaos_b_bytes
        )
        report["trace_deterministic"] = (
            _canonical_trace(injector_a) == _canonical_trace(injector_b)
        )

        serve_report: dict = {"enabled": bool(serve)}
        injector_serve = None
        if serve:
            # Clean reference frontier: the same sweep, no faults, run
            # locally against the shared soak cache.
            clean_sweep_bytes = _clean_sweep(scale, jobs, grid_dir)
            injector_serve = FaultInjector(FaultPlan.parse(plan_spec,
                                                           seed=seed))
            serve_report.update(_serve_phase(
                experiments[0], scale, grid_dir, injector_serve
            ))
            body = serve_report.pop("body", None)
            if body is not None:
                clean_payload = json.loads(clean_bytes.decode())
                served = json.loads(body.decode()).get("results", {})
                serve_report["results_match_clean"] = bool(served) and all(
                    clean_payload.get(key) == value
                    for key, value in served.items()
                )
                serve_report["ok"] = (serve_report["ok"]
                                      and serve_report["results_match_clean"])
            sweep_body = serve_report.pop("sweep_body", None)
            if sweep_body is not None:
                serve_report["sweep_matches_clean"] = (
                    sweep_body == clean_sweep_bytes
                )
                serve_report["ok"] = (serve_report["ok"]
                                      and serve_report["sweep_matches_clean"])
        report["serve"] = serve_report

        injectors = {"grid_a": injector_a, "grid_b": injector_b}
        if injector_serve is not None:
            injectors["serve"] = injector_serve
        report["faults_fired"] = {
            name: inj.fired_by_site() for name, inj in injectors.items()
        }
        unrecovered = {
            name: [r.as_dict() for r in inj.unrecovered()]
            for name, inj in injectors.items() if inj.unrecovered()
        }
        report["unrecovered"] = unrecovered
        report["trace"] = {
            name: inj.trace() for name, inj in injectors.items()
        }
        total_fired = sum(
            sum(counts.values()) for counts in report["faults_fired"].values()
        )
        report["total_faults_fired"] = total_fired
        report["ok"] = (
            report["identical_grid"]
            and report["trace_deterministic"]
            and not unrecovered
            and (not serve or serve_report.get("ok", False))
        )
    report["wall_seconds"] = round(time.time() - started, 3)
    return report


def write_trace(report: dict, out: str | Path) -> Path:
    """Persist the soak report (the CI artifact)."""
    path = Path(out)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
