"""Command-line interface: regenerate the paper from a shell.

Usage::

    python -m repro list
    python -m repro run fig7 --scale quick
    python -m repro run fig13 fig14 --scale default
    python -m repro suite --scale quick
    python -m repro bench --scale default --out BENCH_engine.json

Each experiment prints the same rows/series the paper reports; see
EXPERIMENTS.md for paper-vs-measured commentary.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.sim.config import BIG_SCALE, DEFAULT_SCALE, QUICK_SCALE

#: Experiment name -> (module, description).
EXPERIMENTS: dict[str, str] = {
    "fig1": "motivation: eager decay across runs, ranger latency",
    "table1": "vRMM ranges & vHC anchors for 99% coverage",
    "fig7": "native contiguity, no memory pressure",
    "fig8": "contiguity under hog fragmentation",
    "fig9": "free-block size distribution after runs",
    "fig10": "multi-programmed 2x SVM",
    "fig11": "software runtime overheads vs THP",
    "table5": "page-fault count + 99th latency",
    "table6": "memory bloat vs 4K demand paging",
    "fig12": "virtualized (2D) contiguity",
    "fig13": "translation overheads: 4K/THP/SpOT/vRMM/DS",
    "fig14": "SpOT prediction breakdown",
    "table7": "unsafe-load (USL) estimation",
    # Extensions beyond the paper's figures (§VII claims made testable).
    "ext_shadow": "extension: nested vs shadow paging under CA+SpOT",
    "ext_multivm": "extension: two consolidated VMs on one host",
    "ext_vhc": "extension: hybrid coalescing run, not just counted",
}

# The unit-test profile is deliberately absent: its machines are too
# small to hold the workload suite.
SCALES = {
    "quick": QUICK_SCALE,
    "default": DEFAULT_SCALE,
    "big": BIG_SCALE,
}


def _run_experiment(name: str, scale, json_dir=None, scale_name: str = "") -> None:
    module = importlib.import_module(f"repro.experiments.{name}")
    started = time.time()
    results = {}
    if name == "fig1":
        # fig1 has two sub-experiments with their own run functions.
        results["fig1b"] = module.run_fig1b(scale=scale)
        results["fig1c"] = module.run_fig1c(scale=scale)
        print("Fig 1b: coverage across consecutive PageRank runs")
        print(results["fig1b"].report())
        print("\nFig 1c: coverage during XSBench execution")
        print(results["fig1c"].report())
    else:
        results[name] = module.run(scale=scale)
        print(results[name].report())
    if json_dir is not None:
        from repro.experiments.serialize import save_result

        for key, result in results.items():
            out = save_result(
                json_dir / f"{key}.json", key, result,
                scale=scale_name, seconds=round(time.time() - started, 1),
            )
            print(f"[saved {out}]")
    print(f"\n[{name} done in {time.time() - started:.1f}s]")


def _cmd_list(_args) -> int:
    width = max(len(n) for n in EXPERIMENTS)
    for name, description in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def _json_dir(args):
    if not getattr(args, "json", None):
        return None
    from pathlib import Path

    path = Path(args.json)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cmd_run(args) -> int:
    scale = SCALES[args.scale]
    json_dir = _json_dir(args)
    for name in args.experiment:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `python -m repro list`",
                  file=sys.stderr)
            return 2
        print(f"=== {name}: {EXPERIMENTS[name]} (scale={args.scale}) ===")
        _run_experiment(name, scale, json_dir, args.scale)
        print()
    return 0


def _cmd_suite(args) -> int:
    scale = SCALES[args.scale]
    json_dir = _json_dir(args)
    for name in EXPERIMENTS:
        print(f"=== {name}: {EXPERIMENTS[name]} (scale={args.scale}) ===")
        _run_experiment(name, scale, json_dir, args.scale)
        print()
    return 0


def _cmd_bench(args) -> int:
    import os

    from repro.bench import BENCH_SCALES, run_bench, write_report

    scale_name = args.scale or os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale_name not in BENCH_SCALES:
        print(f"unknown bench scale {scale_name!r}; "
              f"choose from {sorted(BENCH_SCALES)}", file=sys.stderr)
        return 2
    print(f"=== bench: engine A/B (scale={scale_name}, "
          f"workload={args.workload}) ===")
    report = run_bench(scale_name, args.workload, args.trace_len)
    out = write_report(report, args.out)
    fault = report["fault_path"]
    for policy, row in fault["policies"].items():
        print(f"fault path [{policy:>6}]: scalar {row['scalar']['seconds']:.2f}s"
              f" -> fast {row['fast']['seconds']:.2f}s"
              f" ({row['speedup']}x, identical={row['engines_identical']})")
    print(f"fault path aggregate: {report['fault_speedup']}x faults/sec")
    for name, row in report["replay"]["states"].items():
        print(f"replay [{name}]: {row['scalar_accesses_per_sec']:.0f}"
              f" -> {row['vector_accesses_per_sec']:.0f} accesses/sec"
              f" ({row['speedup']}x, identical={row['engines_identical']})")
    print(f"replay speedup (min over states): {report['replay_speedup']}x")
    print(f"engines identical: {report['engines_identical']}")
    print(f"[saved {out} in {report['wall_seconds']}s]")
    return 0 if report["engines_identical"] else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the ISCA'20 contiguity paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument("experiment", nargs="+", help="experiment name(s)")
    run_p.add_argument(
        "--scale", choices=sorted(SCALES), default="quick",
        help="scale profile (default: quick)",
    )
    run_p.add_argument(
        "--json", metavar="DIR",
        help="also write each result as JSON into this directory",
    )
    run_p.set_defaults(func=_cmd_run)

    suite_p = sub.add_parser("suite", help="run every experiment")
    suite_p.add_argument(
        "--scale", choices=sorted(SCALES), default="quick",
        help="scale profile (default: quick)",
    )
    suite_p.add_argument(
        "--json", metavar="DIR",
        help="also write each result as JSON into this directory",
    )
    suite_p.set_defaults(func=_cmd_suite)

    bench_p = sub.add_parser(
        "bench", help="A/B the scalar vs batched simulation engines"
    )
    bench_p.add_argument(
        "--scale", default=None,
        help="bench scale: test/quick/default/big (default: "
             "$REPRO_BENCH_SCALE or default)",
    )
    bench_p.add_argument(
        "--workload", default="svm", help="workload to replay (default: svm)",
    )
    bench_p.add_argument(
        "--trace-len", type=int, default=200_000,
        help="replay-phase trace length (default: 200000)",
    )
    bench_p.add_argument(
        "--out", default="BENCH_engine.json", metavar="FILE",
        help="JSON report path (default: BENCH_engine.json)",
    )
    bench_p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
