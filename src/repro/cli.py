"""Command-line interface: regenerate the paper from a shell.

Usage::

    python -m repro list
    python -m repro run fig7 --scale quick
    python -m repro run fig13 fig14 --scale default --jobs 4
    python -m repro suite --scale quick --jobs 8
    python -m repro bench --scale default --out BENCH_engine.json
    python -m repro bench-suite --scale quick --out BENCH_suite.json

Experiments decompose into run cells (see :mod:`repro.sim.jobs`);
``--jobs N`` fans the cells of all requested experiments out over N
worker processes, and results are memoized in a content-addressed
on-disk cache (``--cache-dir``, disable with ``--no-cache``) keyed by
cell spec + source digest, so repeated and overlapping invocations skip
the simulation work entirely.

Each experiment prints the same rows/series the paper reports; see
EXPERIMENTS.md for paper-vs-measured commentary.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

from repro.sim.config import BIG_SCALE, DEFAULT_SCALE, QUICK_SCALE

#: Experiment name -> (module, description).
EXPERIMENTS: dict[str, str] = {
    "fig1": "motivation: eager decay across runs, ranger latency",
    "table1": "vRMM ranges & vHC anchors for 99% coverage",
    "fig7": "native contiguity, no memory pressure",
    "fig8": "contiguity under hog fragmentation",
    "fig9": "free-block size distribution after runs",
    "fig10": "multi-programmed 2x SVM",
    "fig11": "software runtime overheads vs THP",
    "table5": "page-fault count + 99th latency",
    "table6": "memory bloat vs 4K demand paging",
    "fig12": "virtualized (2D) contiguity",
    "fig13": "translation overheads: 4K/THP/SpOT/vRMM/DS",
    "fig14": "SpOT prediction breakdown",
    "table7": "unsafe-load (USL) estimation",
    # Extensions beyond the paper's figures (§VII claims made testable).
    "ext_shadow": "extension: nested vs shadow paging under CA+SpOT",
    "ext_multivm": "extension: two consolidated VMs on one host",
    "ext_vhc": "extension: hybrid coalescing run, not just counted",
}

# The unit-test profile is deliberately absent: its machines are too
# small to hold the workload suite.
SCALES = {
    "quick": QUICK_SCALE,
    "default": DEFAULT_SCALE,
    "big": BIG_SCALE,
}


def experiment_plans(name: str, scale) -> list[tuple[str, "object"]]:
    """The ``(result_key, Plan)`` pairs one experiment contributes.

    Most experiments expose a single ``plan()``; fig 1 carries two
    sub-experiments with their own plans.
    """
    module = importlib.import_module(f"repro.experiments.{name}")
    if name == "fig1":
        return [
            ("fig1b", module.plan_fig1b(scale=scale)),
            ("fig1c", module.plan_fig1c(scale=scale)),
        ]
    return [(name, module.plan(scale=scale))]


def suite_plans(scale, names=None) -> list[tuple[str, str, "object"]]:
    """``(experiment, result_key, Plan)`` for every requested experiment."""
    entries = []
    for name in (names if names is not None else EXPERIMENTS):
        for key, plan in experiment_plans(name, scale):
            entries.append((name, key, plan))
    return entries


def make_executor(args):
    """Build the Executor the ``--jobs``/cache flags describe."""
    from repro.sim.cache import RunCache
    from repro.sim.jobs import Executor

    cache = None
    if not getattr(args, "no_cache", False):
        cache = RunCache(getattr(args, "cache_dir", None))
    return Executor(jobs=getattr(args, "jobs", None) or 1, cache=cache)


def _run_experiments(names: list[str], args) -> int:
    from repro.sim.jobs import run_plans

    scale = SCALES[args.scale]
    json_dir = _json_dir(args)
    executor = make_executor(args)
    started = time.time()
    entries = suite_plans(scale, names)
    results = run_plans([plan for _, _, plan in entries], executor)
    by_name: dict[str, list[tuple[str, object]]] = {}
    for (name, key, _), result in zip(entries, results):
        by_name.setdefault(name, []).append((key, result))
    for name in names:
        print(f"=== {name}: {EXPERIMENTS[name]} (scale={args.scale}) ===")
        for key, result in by_name[name]:
            if key != name:
                print(f"[{key}]")
            print(result.report())
            if json_dir is not None:
                from repro.experiments.serialize import save_result

                out = save_result(
                    json_dir / f"{key}.json", key, result, scale=args.scale
                )
                print(f"[saved {out}]")
        print()
    s = executor.stats
    print(
        f"[{len(entries)} plan(s), {s.submitted} cell(s): "
        f"{s.computed} computed, {s.cache_hits} cached, "
        f"{s.deduped} deduped; jobs={executor.jobs}; "
        f"{time.time() - started:.1f}s]"
    )
    return 0


def _cmd_list(_args) -> int:
    width = max(len(n) for n in EXPERIMENTS)
    for name, description in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def _json_dir(args):
    if not getattr(args, "json", None):
        return None
    from pathlib import Path

    path = Path(args.json)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cmd_run(args) -> int:
    for name in args.experiment:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `python -m repro list`",
                  file=sys.stderr)
            return 2
    return _run_experiments(list(args.experiment), args)


def _cmd_suite(args) -> int:
    return _run_experiments(list(EXPERIMENTS), args)


def _cmd_bench(args) -> int:
    import os

    from repro.bench import BENCH_SCALES, run_bench, write_report

    scale_name = args.scale or os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale_name not in BENCH_SCALES:
        print(f"unknown bench scale {scale_name!r}; "
              f"choose from {sorted(BENCH_SCALES)}", file=sys.stderr)
        return 2
    print(f"=== bench: engine A/B (scale={scale_name}, "
          f"workload={args.workload}) ===")
    report = run_bench(scale_name, args.workload, args.trace_len)
    out = write_report(report, args.out)
    fault = report["fault_path"]
    for policy, row in fault["policies"].items():
        print(f"fault path [{policy:>6}]: scalar {row['scalar']['seconds']:.2f}s"
              f" -> fast {row['fast']['seconds']:.2f}s"
              f" ({row['speedup']}x, identical={row['engines_identical']})")
    print(f"fault path aggregate: {report['fault_speedup']}x faults/sec")
    for name, row in report["replay"]["states"].items():
        print(f"replay [{name}]: {row['scalar_accesses_per_sec']:.0f}"
              f" -> {row['vector_accesses_per_sec']:.0f} accesses/sec"
              f" ({row['speedup']}x, identical={row['engines_identical']})")
    print(f"replay speedup (min over states): {report['replay_speedup']}x")
    print(f"engines identical: {report['engines_identical']}")
    print(f"[saved {out} in {report['wall_seconds']}s]")
    return 0 if report["engines_identical"] else 1


def _cmd_bench_suite(args) -> int:
    from repro.bench import run_suite_bench, write_report

    for name in args.experiments or ():
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `python -m repro list`",
                  file=sys.stderr)
            return 2
    print(f"=== bench-suite: orchestrator serial/cold/warm "
          f"(scale={args.scale}, jobs={args.jobs or 'auto'}) ===")
    report = run_suite_bench(
        args.scale,
        jobs=args.jobs,
        experiments=tuple(args.experiments) if args.experiments else None,
        cache_root=args.cache_dir,
    )
    for mode, row in report["modes"].items():
        s = row["stats"]
        extra = (
            f" ({row['speedup_vs_serial']}x vs serial)"
            if "speedup_vs_serial" in row else ""
        )
        print(f"{mode:>13}: {row['seconds']:.2f}s{extra} — "
              f"{s['computed']} computed, {s['cache_hits']} cached, "
              f"{s['deduped']} deduped of {s['submitted']}")
    print(f"results identical across modes: {report['results_identical']}")
    out = write_report(report, args.out)
    print(f"[saved {out} in {report['wall_seconds']}s]")
    ok = report["results_identical"]
    if args.min_warm_speedup and report["warm_speedup"] < args.min_warm_speedup:
        print(f"warm speedup {report['warm_speedup']}x below gate "
              f"{args.min_warm_speedup}x", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the ISCA'20 contiguity paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    def add_orchestrator_flags(p, default_jobs: int) -> None:
        p.add_argument(
            "--scale", choices=sorted(SCALES), default="quick",
            help="scale profile (default: quick)",
        )
        p.add_argument(
            "--json", metavar="DIR",
            help="also write each result as JSON into this directory",
        )
        p.add_argument(
            "--jobs", type=int, default=default_jobs, metavar="N",
            help=f"worker processes for cell fan-out (default: {default_jobs})",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="content-addressed run cache location (default: "
                 "$REPRO_CACHE_DIR or .repro-cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="compute every cell, skip cache reads and writes",
        )

    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument("experiment", nargs="+", help="experiment name(s)")
    add_orchestrator_flags(run_p, default_jobs=1)
    run_p.set_defaults(func=_cmd_run)

    suite_p = sub.add_parser("suite", help="run every experiment")
    add_orchestrator_flags(suite_p, default_jobs=os.cpu_count() or 1)
    suite_p.set_defaults(func=_cmd_suite)

    bench_p = sub.add_parser(
        "bench", help="A/B the scalar vs batched simulation engines"
    )
    bench_p.add_argument(
        "--scale", default=None,
        help="bench scale: test/quick/default/big (default: "
             "$REPRO_BENCH_SCALE or default)",
    )
    bench_p.add_argument(
        "--workload", default="svm", help="workload to replay (default: svm)",
    )
    bench_p.add_argument(
        "--trace-len", type=int, default=200_000,
        help="replay-phase trace length (default: 200000)",
    )
    bench_p.add_argument(
        "--out", default="BENCH_engine.json", metavar="FILE",
        help="JSON report path (default: BENCH_engine.json)",
    )
    bench_p.set_defaults(func=_cmd_bench)

    suite_bench_p = sub.add_parser(
        "bench-suite",
        help="A/B/C the orchestrator: serial vs parallel-cold vs warm",
    )
    suite_bench_p.add_argument(
        "--scale", choices=sorted(SCALES), default="quick",
        help="scale profile (default: quick)",
    )
    suite_bench_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan-out width for the parallel passes (default: all cores)",
    )
    suite_bench_p.add_argument(
        "--experiments", nargs="*", default=None, metavar="NAME",
        help="subset of experiments to bench (default: the whole suite)",
    )
    suite_bench_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="scratch cache directory — cleared before the cold pass "
             "(default: a private temp dir)",
    )
    suite_bench_p.add_argument(
        "--out", default="BENCH_suite.json", metavar="FILE",
        help="JSON report path (default: BENCH_suite.json)",
    )
    suite_bench_p.add_argument(
        "--min-warm-speedup", type=float, default=0.0, metavar="X",
        help="fail unless the warm pass beats serial by at least X times",
    )
    suite_bench_p.set_defaults(func=_cmd_bench_suite)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
