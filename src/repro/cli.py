"""Command-line interface: regenerate the paper from a shell.

Usage::

    python -m repro list
    python -m repro run fig7 --scale quick
    python -m repro run fig13 fig14 --scale default --jobs 4
    python -m repro suite --scale quick --jobs 8
    python -m repro bench --scale default --out BENCH_engine.json
    python -m repro bench-suite --scale quick --out BENCH_suite.json
    python -m repro serve --port 8377 --workers 2
    python -m repro submit fig11 --scale quick
    python -m repro bench-serve --clients 8 --out BENCH_serve.json
    python -m repro sweep --policies thp,ca --workloads svm,pagerank
    python -m repro sweep --submit --stream --port 8377
    python -m repro cache stats
    python -m repro cache prune --max-bytes 500M
    python -m repro run fig9 --chaos-plan 0.2 --chaos-seed 7
    python -m repro chaos-soak --quick --out CHAOS_TRACE.json

Experiments decompose into run cells (see :mod:`repro.sim.jobs`);
``--jobs N`` fans the cells of all requested experiments out over N
worker processes, and results are memoized in a content-addressed
on-disk cache (``--cache-dir``, disable with ``--no-cache``) keyed by
cell spec + source digest, so repeated and overlapping invocations skip
the simulation work entirely.

Each experiment prints the same rows/series the paper reports; see
EXPERIMENTS.md for paper-vs-measured commentary.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

from repro.sim.config import BIG_SCALE, DEFAULT_SCALE, QUICK_SCALE

#: Experiment name -> (module, description).
EXPERIMENTS: dict[str, str] = {
    "fig1": "motivation: eager decay across runs, ranger latency",
    "table1": "vRMM ranges & vHC anchors for 99% coverage",
    "fig7": "native contiguity, no memory pressure",
    "fig8": "contiguity under hog fragmentation",
    "fig9": "free-block size distribution after runs",
    "fig10": "multi-programmed 2x SVM",
    "fig11": "software runtime overheads vs THP",
    "table5": "page-fault count + 99th latency",
    "table6": "memory bloat vs 4K demand paging",
    "fig12": "virtualized (2D) contiguity",
    "fig13": "translation overheads: 4K/THP/SpOT/vRMM/DS",
    "fig14": "SpOT prediction breakdown",
    "table7": "unsafe-load (USL) estimation",
    # Extensions beyond the paper's figures (§VII claims made testable).
    "ext_shadow": "extension: nested vs shadow paging under CA+SpOT",
    "ext_multivm": "extension: two consolidated VMs on one host",
    "ext_vhc": "extension: hybrid coalescing run, not just counted",
}

# The unit-test profile is deliberately absent: its machines are too
# small to hold the workload suite.
SCALES = {
    "quick": QUICK_SCALE,
    "default": DEFAULT_SCALE,
    "big": BIG_SCALE,
}


#: Experiments whose aging-VM chains split into checkpointed stages
#: (``plan(staged=...)``); the rest always build monolithic cells.
STAGED_EXPERIMENTS = frozenset(
    {"fig13", "fig14", "table7", "ext_shadow", "ext_vhc"}
)


def experiment_plans(name: str, scale,
                     staged: bool | None = None) -> list[tuple[str, "object"]]:
    """The ``(result_key, Plan)`` pairs one experiment contributes.

    Most experiments expose a single ``plan()``; fig 1 carries two
    sub-experiments with their own plans.  ``staged`` overrides the
    chain-splitting default for the experiments that support it
    (``None`` keeps each module's default, which is staged).
    """
    module = importlib.import_module(f"repro.experiments.{name}")
    if name == "fig1":
        return [
            ("fig1b", module.plan_fig1b(scale=scale)),
            ("fig1c", module.plan_fig1c(scale=scale)),
        ]
    kwargs = {}
    if staged is not None and name in STAGED_EXPERIMENTS:
        kwargs["staged"] = staged
    return [(name, module.plan(scale=scale, **kwargs))]


def suite_plans(scale, names=None,
                staged: bool | None = None) -> list[tuple[str, str, "object"]]:
    """``(experiment, result_key, Plan)`` for every requested experiment."""
    entries = []
    for name in (names if names is not None else EXPERIMENTS):
        for key, plan in experiment_plans(name, scale, staged=staged):
            entries.append((name, key, plan))
    return entries


def make_injector(args):
    """Build the chaos injector ``--chaos-plan``/``--chaos-seed``
    describe (``None`` when chaos is off — the default)."""
    spec = getattr(args, "chaos_plan", None)
    if not spec:
        return None
    from repro.chaos import FaultInjector, FaultPlan

    return FaultInjector(FaultPlan.parse(
        spec, seed=getattr(args, "chaos_seed", 0) or 0
    ))


def make_executor(args, injector=None):
    """Build the Executor the ``--jobs``/cache/chaos flags describe."""
    from repro.sim.cache import HttpCacheTier, RunCache
    from repro.sim.jobs import Executor

    cache = None
    if not getattr(args, "no_cache", False):
        tier = None
        cache_url = getattr(args, "cache_url", None)
        if cache_url:
            tier = HttpCacheTier(cache_url)
        cache = RunCache(getattr(args, "cache_dir", None), injector=injector,
                         tier=tier)
    return Executor(jobs=getattr(args, "jobs", None) or 1, cache=cache,
                    injector=injector)


def _run_experiments(names: list[str], args) -> int:
    from repro.sim.jobs import run_plans

    scale = SCALES[args.scale]
    json_dir = _json_dir(args)
    injector = make_injector(args)
    executor = make_executor(args, injector=injector)
    started = time.time()
    entries = suite_plans(scale, names)
    try:
        results = run_plans([plan for _, _, plan in entries], executor)
    finally:
        executor.close()
    by_name: dict[str, list[tuple[str, object]]] = {}
    for (name, key, _), result in zip(entries, results):
        by_name.setdefault(name, []).append((key, result))
    for name in names:
        print(f"=== {name}: {EXPERIMENTS[name]} (scale={args.scale}) ===")
        for key, result in by_name[name]:
            if key != name:
                print(f"[{key}]")
            print(result.report())
            if json_dir is not None:
                from repro.experiments.serialize import save_result

                out = save_result(
                    json_dir / f"{key}.json", key, result, scale=args.scale
                )
                print(f"[saved {out}]")
        print()
    s = executor.stats
    print(
        f"[{len(entries)} plan(s), {s.submitted} cell(s): "
        f"{s.computed} computed, {s.cache_hits} cached, "
        f"{s.deduped} deduped; jobs={executor.jobs}; "
        f"{time.time() - started:.1f}s]"
    )
    cache = executor.cache
    if cache is not None and cache.tier is not None:
        print(f"[cache tier: {cache.tier_hits} hit(s), "
              f"{cache.tier_misses} miss(es), "
              f"{cache.tier_stores} store(s), "
              f"{cache.tier_errors} error(s)]")
    if injector is not None:
        fired = sum(injector.fired_by_site().values())
        unrecovered = injector.unrecovered()
        print(f"[chaos: {fired} fault(s) fired "
              f"({injector.fired_by_site()}), "
              f"{len(unrecovered)} unrecovered]")
        if unrecovered:
            for record in unrecovered:
                print(f"  UNRECOVERED {record.site} @ {record.token}",
                      file=sys.stderr)
            return 1
    return 0


def _cmd_list(_args) -> int:
    width = max(len(n) for n in EXPERIMENTS)
    for name, description in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def _json_dir(args):
    if not getattr(args, "json", None):
        return None
    from pathlib import Path

    path = Path(args.json)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cmd_run(args) -> int:
    for name in args.experiment:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `python -m repro list`",
                  file=sys.stderr)
            return 2
    return _run_experiments(list(args.experiment), args)


def _cmd_suite(args) -> int:
    return _run_experiments(list(EXPERIMENTS), args)


def _cmd_bench(args) -> int:
    import os

    from repro.bench import BENCH_SCALES, run_bench, write_report

    scale_name = args.scale or os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale_name not in BENCH_SCALES:
        print(f"unknown bench scale {scale_name!r}; "
              f"choose from {sorted(BENCH_SCALES)}", file=sys.stderr)
        return 2
    print(f"=== bench: engine A/B (scale={scale_name}, "
          f"workload={args.workload}) ===")
    report = run_bench(
        scale_name, args.workload, args.trace_len, fault_steps=args.fault_steps
    )
    out = write_report(report, args.out)
    fault = report["fault_path"]
    if scale_name == "paper":
        col = fault["columnar"]
        print(f"fault path [paper/{fault['policy']}]: columnar "
              f"{col['seconds']:.1f}s for {col['faults']:,} faults "
              f"({col['faults_per_sec']:,.0f}/s)")
        print(f"scalar projected: {fault['scalar_projected_seconds']:.0f}s, "
              f"fast projected: {fault['fast_projected_seconds']:.0f}s "
              f"(budget {fault['budget_seconds']:.0f}s)")
        print(f"columnar in budget: {fault['columnar_in_budget']}, "
              f"scalar in budget: {fault['scalar_in_budget']}")
        print(f"fault-path speedup (projected scalar / columnar): "
              f"{report['fault_speedup']}x")
        print(f"[saved {out} in {report['wall_seconds']}s]")
        if not fault["columnar_in_budget"]:
            print("columnar paper-tier run blew the budget", file=sys.stderr)
            return 1
        if args.min_fault_speedup and report["fault_speedup"] < args.min_fault_speedup:
            print(f"fault-path speedup {report['fault_speedup']}x below required "
                  f"{args.min_fault_speedup}x", file=sys.stderr)
            return 1
        return 0
    for policy, row in fault["policies"].items():
        print(f"fault path [{policy:>6}]: scalar {row['scalar']['seconds']:.2f}s"
              f" -> fast {row['fast']['seconds']:.2f}s"
              f" -> columnar {row['columnar']['seconds']:.2f}s"
              f" ({row['speedup']}x, identical={row['engines_identical']})")
    print(f"fault path aggregate: {report['fault_speedup']}x faults/sec")
    for name, row in report["replay"]["states"].items():
        print(f"replay [{name}]: {row['scalar_accesses_per_sec']:.0f}"
              f" -> {row['vector_accesses_per_sec']:.0f} accesses/sec"
              f" ({row['speedup']}x, identical={row['engines_identical']})")
    print(f"replay speedup (min over states): {report['replay_speedup']}x")
    for name, row in report["walk_path"]["states"].items():
        print(f"walk path [{name}]: {row['scalar_walks_per_sec']:.0f}"
              f" -> {row['vector_walks_per_sec']:.0f} walks/sec"
              f" (miss rate {row['miss_rate']}, {row['speedup']}x, "
              f"identical={row['engines_identical']})")
    print(f"walk-path speedup (min over states): {report['walk_speedup']}x")
    print(f"engines identical: {report['engines_identical']}")
    print(f"[saved {out} in {report['wall_seconds']}s]")
    if not report["engines_identical"]:
        return 1
    if args.min_walk_speedup and report["walk_speedup"] < args.min_walk_speedup:
        print(f"walk-path speedup {report['walk_speedup']}x below required "
              f"{args.min_walk_speedup}x", file=sys.stderr)
        return 1
    if args.min_fault_speedup and report["fault_speedup"] < args.min_fault_speedup:
        print(f"fault-path speedup {report['fault_speedup']}x below required "
              f"{args.min_fault_speedup}x", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_suite(args) -> int:
    from repro.bench import run_suite_bench, write_report

    for name in args.experiments or ():
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `python -m repro list`",
                  file=sys.stderr)
            return 2
    print(f"=== bench-suite: orchestrator serial/cold/warm/two-tier "
          f"(scale={args.scale}, jobs={args.jobs or 'auto'}) ===")
    report = run_suite_bench(
        args.scale,
        jobs=args.jobs,
        experiments=tuple(args.experiments) if args.experiments else None,
        cache_root=args.cache_dir,
    )
    for mode, row in report["modes"].items():
        s = row["stats"]
        extra = (
            f" ({row['speedup_vs_serial']}x vs serial)"
            if "speedup_vs_serial" in row else ""
        )
        tier = s.get("tier")
        tier_note = (
            f"; tier {tier['hits']}h/{tier['stores']}s/{tier['errors']}e"
            if tier else ""
        )
        print(f"{mode:>13}: {row['seconds']:.2f}s{extra} — "
              f"{s['computed']} computed, {s['cache_hits']} cached, "
              f"{s['deduped']} deduped of {s['submitted']}{tier_note}")
    print(f"two-tier federation: {report['two_tier_hits']} cell(s) "
          f"served by the shared tier, {report['two_tier_computed']} "
          f"recomputed")
    ser = report["serialize"]
    print(f"serialize overhead: {ser['total_bytes']:,} bytes across "
          f"{ser['cells_measured']} cells in {ser['total_seconds']:.3f}s "
          f"({ser['share_of_cold'] * 100:.1f}% of the cold pass per pickling)")
    for row in ser["top_cells"][:3]:
        print(f"  heaviest: {row['cell']} — {row['bytes']:,} bytes "
              f"({row['seconds'] * 1000:.1f} ms)")
    print(f"results identical across modes: {report['results_identical']}")
    out = write_report(report, args.out)
    print(f"[saved {out} in {report['wall_seconds']}s]")
    ok = report["results_identical"]
    if report["two_tier_computed"] != 0:
        print(f"two-tier pass recomputed {report['two_tier_computed']} "
              f"cell(s) the shared tier should have served",
              file=sys.stderr)
        ok = False
    if args.min_warm_speedup and report["warm_speedup"] < args.min_warm_speedup:
        print(f"warm speedup {report['warm_speedup']}x below gate "
              f"{args.min_warm_speedup}x", file=sys.stderr)
        ok = False
    if args.min_cold_speedup:
        if not report["parallel_gate_meaningful"]:
            print(f"[skipping --min-cold-speedup {args.min_cold_speedup}x "
                  f"gate: only {report['cpus']} cpu(s); parallel-vs-serial "
                  f"is meaningless without >=2 cores]")
        elif report["cold_speedup"] < args.min_cold_speedup:
            print(f"cold speedup {report['cold_speedup']}x below gate "
                  f"{args.min_cold_speedup}x", file=sys.stderr)
            ok = False
    return 0 if ok else 1


def parse_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G/T suffix (``"500M"``)."""
    text = str(text).strip()
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}
    factor = 1
    if text and text[-1].upper() in suffixes:
        factor = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a size: {text!r} (expected e.g. 1000000, 500M, 2G)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("size must be >= 0")
    return int(value * factor)


def _cmd_serve(args) -> int:
    from repro.serve.server import build_server

    build_server(args).run()
    return 0


def _cmd_submit(args) -> int:
    import json as _json

    from repro.serve.client import ServeClient, ServeError

    params = None
    if args.params:
        try:
            params = _json.loads(args.params)
        except _json.JSONDecodeError as exc:
            print(f"--params is not valid JSON: {exc}", file=sys.stderr)
            return 2
    client = ServeClient(host=args.host, port=args.port)
    try:
        if args.stream:
            payload = None
            for event in client.iter_stream(
                args.experiment, scale=args.scale, params=params
            ):
                if event.get("event") == "result":
                    payload = event["data"]
                else:
                    print(_json.dumps(event, sort_keys=True))
            if payload is None:
                print("stream ended without a result", file=sys.stderr)
                return 1
        else:
            resp = client.run(args.experiment, scale=args.scale, params=params)
            if resp.status == 503:
                retry = resp.headers.get("retry-after", "?")
                print(f"server busy (503); retry after {retry}s",
                      file=sys.stderr)
                return 1
            if not resp.ok:
                print(f"HTTP {resp.status}: {resp.body.decode(errors='replace')}",
                      file=sys.stderr)
                return 1
            payload = resp.json
            print(f"[job coalesced={int(resp.coalesced)} "
                  f"elapsed={resp.elapsed_ms:.1f}ms "
                  f"computed={resp.cells_computed} "
                  f"cached={resp.cells_cached}]", file=sys.stderr)
    except (ServeError, ConnectionError, OSError) as exc:
        print(f"cannot reach server at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    for key, report in payload["reports"].items():
        if key != args.experiment:
            print(f"[{key}]")
        print(report)
    if args.json:
        from pathlib import Path

        out = Path(args.json)
        out.write_text(_json.dumps(payload, indent=2, sort_keys=True))
        print(f"[saved {out}]", file=sys.stderr)
    return 0


def _cmd_bench_serve(args) -> int:
    from repro.bench import write_report
    from repro.serve.loadgen import run_serve_bench

    print(f"=== bench-serve: cold coalescing + warm latency "
          f"(scale={args.scale}, experiment={args.experiment}, "
          f"clients={args.clients}) ===")
    report = run_serve_bench(
        args.scale, experiment=args.experiment, clients=args.clients,
        warm_rounds=args.warm_rounds, cache_root=args.cache_dir,
        workers=args.workers,
    )
    cold, warm = report["cold"], report["warm"]
    print(f" cold: p50 {cold['p50_ms']:.0f}ms over {cold['requests']} "
          f"clients — {cold['executor_jobs']:.0f} executor job(s), "
          f"{cold['coalesced_joins']:.0f} coalesced join(s), "
          f"{cold['unique_bodies']} unique body(ies)")
    print(f" warm: p50 {warm['p50_ms']:.1f}ms p95 {warm['p95_ms']:.1f}ms "
          f"p99 {warm['p99_ms']:.1f}ms — {warm['throughput_rps']} req/s "
          f"over {warm['requests']} requests")
    sweep = report["sweep"]
    print(f" sweep: stream p50 {sweep['p50_ms']:.0f}ms "
          f"p95 {sweep['p95_ms']:.0f}ms over {sweep['requests']} "
          f"overlapping grids — {sweep['points_total']} points, "
          f"{sweep['cells_computed']:.0f} computed of "
          f"{sweep['cell_refs']} cell refs "
          f"(dedup ratio {sweep['dedup_ratio']})")
    tier = report.get("tier") or {}
    if tier.get("bytes_on_wire"):
        print(f" tier: {tier['bytes_on_wire']:,}B {tier['blob_format']} on "
              f"the wire vs {tier['raw_equivalent_bytes']:,}B raw "
              f"({tier['wire_reduction']}x); old peer pulled "
              f"{tier['old_peer_bytes']:,}B {tier['old_peer_format']}")
    print(f" coalescing_ok={report['coalescing_ok']} "
          f"bodies_identical={report['bodies_identical']} "
          f"sweep_ok={report['sweep_ok']} "
          f"failed={report['failed_requests']} "
          f"warm_over_cold={report['warm_over_cold']}x")
    out = write_report(report, args.out)
    print(f"[saved {out} in {report['wall_seconds']}s]")
    ok = (report["failed_requests"] == 0 and report["coalescing_ok"]
          and report["bodies_identical"] and report["sweep_ok"])
    if args.min_warm_speedup and report["warm_over_cold"] < args.min_warm_speedup:
        print(f"warm-over-cold {report['warm_over_cold']}x below gate "
              f"{args.min_warm_speedup}x", file=sys.stderr)
        ok = False
    if args.max_warm_p50_ms and report["warm_p50_ms"] > args.max_warm_p50_ms:
        print(f"warm p50 {report['warm_p50_ms']}ms above gate "
              f"{args.max_warm_p50_ms}ms", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_bench_transport(args) -> int:
    from repro.bench import BENCH_SCALES, write_report
    from repro.bench_transport import run_transport_bench

    if args.scale not in BENCH_SCALES:
        print(f"unknown bench scale {args.scale!r}; "
              f"choose from {sorted(BENCH_SCALES)}", file=sys.stderr)
        return 2
    print(f"=== bench-transport: framed RPT1 vs raw pickle "
          f"(scale={args.scale}) ===")
    report = run_transport_bench(args.scale, cache_root=args.cache_dir)
    ckpt = report["checkpoint"]
    for row in ckpt["stages"]:
        print(f" checkpoint [{row['stage']:>9}]: raw {row['raw_bytes']:,}B "
              f"{row['raw_store_ms']:.1f}+{row['raw_resume_ms']:.1f}ms -> "
              f"delta {row['delta_bytes']:,}B "
              f"{row['framed_store_ms']:.1f}+{row['framed_resume_ms']:.1f}ms "
              f"({row['ref_frames']} ref frame(s))")
    print(f" checkpoint totals: {ckpt['raw_bytes']:,}B raw -> "
          f"{ckpt['delta_bytes']:,}B delta "
          f"({ckpt['size_reduction']}x smaller, "
          f"{ckpt['throughput_ratio']}x faster store+resume)")
    chain = report["chain"]
    print(f" chain [{chain['experiment']}]: cold {chain['cold_seconds']}s, "
          f"warm {chain['warm_seconds']}s "
          f"(identical={chain['warm_identical']}, "
          f"all_hits={chain['warm_all_hits']}); legacy-raw replay "
          f"{chain['legacy_warm_seconds']}s "
          f"(identical={chain['legacy_identical']}, "
          f"migrated={chain['entries_migrated_to_raw']})")
    tier = report["tier"]
    print(f" tier: {tier['wire_bytes_framed']:,}B on the wire vs "
          f"{tier['wire_bytes_raw_equivalent']:,}B raw "
          f"({tier['wire_reduction']}x); old peer got "
          f"{tier['old_peer_transcoded_bytes']:,}B "
          f"{tier['old_peer_format']} transcode")
    out = write_report(report, args.out)
    print(f"[saved {out} in {report['wall_seconds']}s]")
    ok = report["replay_identical"]
    if not ok:
        print("staged replay not byte-identical across cache formats",
              file=sys.stderr)
    if (args.min_size_reduction
            and report["size_reduction"] < args.min_size_reduction):
        print(f"size reduction {report['size_reduction']}x below required "
              f"{args.min_size_reduction}x", file=sys.stderr)
        ok = False
    if (args.min_throughput_ratio
            and report["throughput_ratio"] < args.min_throughput_ratio):
        print(f"throughput ratio {report['throughput_ratio']}x below "
              f"required {args.min_throughput_ratio}x", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_chaos_soak(args) -> int:
    from repro.chaos.soak import run_soak, write_trace

    for name in args.experiments or ():
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `python -m repro list`",
                  file=sys.stderr)
            return 2
    print(f"=== chaos-soak: determinism under faults "
          f"(scale={args.scale}, plan={args.plan}, seed={args.seed}) ===")
    report = run_soak(
        scale=args.scale,
        experiments=tuple(args.experiments) if args.experiments else None,
        plan_spec=args.plan, seed=args.seed, jobs=args.jobs,
        serve=not args.skip_serve, quick=args.quick,
    )
    out = write_trace(report, args.out)
    if "error" in report:
        print(f"UNHANDLED: {report['error']}", file=sys.stderr)
    else:
        print(f" grid: {report['experiments']} — byte-identical across "
              f"clean/chaos-A/chaos-B: {report['identical_grid']}")
        print(f" trace: {report['total_faults_fired']} fault(s) fired "
              f"{report['faults_fired']}; "
              f"deterministic={report['trace_deterministic']}; "
              f"unrecovered={sum(len(v) for v in report['unrecovered'].values())}")
        serve = report["serve"]
        if serve.get("enabled"):
            print(f" serve: statuses={serve.get('statuses')} "
                  f"bodies_identical={serve.get('bodies_identical')} "
                  f"results_match_clean={serve.get('results_match_clean')}")
            print(f" sweep: statuses={serve.get('sweep_statuses')} "
                  f"bodies_identical={serve.get('sweep_bodies_identical')} "
                  f"matches_clean={serve.get('sweep_matches_clean')}")
    print(f"[saved {out} in {report['wall_seconds']}s]")
    print(f"chaos-soak: {'OK' if report['ok'] else 'FAILED'}")
    return 0 if report["ok"] else 1


def _make_cache(args):
    from repro.sim.cache import HttpCacheTier, RunCache

    tier = None
    cache_url = getattr(args, "cache_url", None)
    if cache_url:
        tier = HttpCacheTier(cache_url)
    return RunCache(getattr(args, "cache_dir", None), tier=tier)


def _cmd_cache_stats(args) -> int:
    cache = _make_cache(args)
    stats = cache.stats()
    print(f"cache root:  {stats['root']}")
    print(f"entries:     {stats['entries']}")
    print(f"total bytes: {stats['total_bytes']:,}")
    if stats["entries"]:
        print(f"blob formats: {stats['framed_entries']} framed rpt1 "
              f"({stats['framed_bytes']:,} bytes holding "
              f"{stats['framed_logical_bytes']:,} logical), "
              f"{stats['raw_entries']} raw pickle "
              f"({stats['raw_bytes']:,} bytes)")
        print(f"compression: {stats['logical_bytes']:,} logical bytes "
              f"in {stats['total_bytes']:,} stored "
              f"({stats['compression_ratio']:.2f}x)")
    if stats["quarantined"]:
        print(f"quarantined: {stats['quarantined']} "
              f"({stats['quarantined_bytes']:,} bytes)")
    if stats["entries"]:
        age = time.time() - stats["oldest_mtime"]
        print(f"oldest entry age: {age / 3600:.1f}h")
    # Federation counters were collected by stats() all along but never
    # printed, so tier traffic was invisible from the CLI.
    if cache.tier is not None or any(
        stats[k] for k in ("tier_hits", "tier_misses",
                           "tier_stores", "tier_errors")
    ):
        print(f"tier hits:       {stats['tier_hits']}")
        print(f"tier misses:     {stats['tier_misses']}")
        print(f"tier promotions: {stats['tier_stores']}")
        print(f"tier errors:     {stats['tier_errors']}")
    return 0


def _sweep_spec_from_args(args) -> dict:
    """The JSON-shaped request the sweep flags describe."""
    request: dict = {
        "policies": args.policies,
        "schemes": args.schemes,
        "workloads": args.workloads,
        "scale": args.scale,
        "trace_len": args.trace_len,
        "seed": args.seed,
        "hog": args.hog,
    }
    if args.exclude:
        clauses = []
        for text in args.exclude:
            clause = {}
            for pair in text.split(","):
                axis, _, value = pair.partition("=")
                clause[axis.strip()] = value.strip()
            clauses.append(clause)
        request["exclude"] = clauses
    return request


def _print_sweep_outcome(data: dict) -> None:
    print(f"grid: {data['points']} point(s) over "
          f"{data['unique_cells']} unique cell(s)")
    print(f"frontier ({data['frontier_size']} point(s), minimizing "
          f"overhead x bloat):")
    width = max((len(f["label"]) for f in data["frontier"]), default=5)
    for f in data["frontier"]:
        print(f"  {f['label'].ljust(width)}  overhead={f['overhead']:.4f}  "
              f"bloat={f['bloat_fraction']:.4f}  "
              f"99%-mappings={f['mappings_99']}")


def _sweep_gates(args, frontier_size: int, computed: int) -> int:
    ok = True
    if args.max_computed is not None and computed > args.max_computed:
        print(f"computed {computed} cell(s), above the "
              f"--max-computed {args.max_computed} gate", file=sys.stderr)
        ok = False
    if args.min_frontier is not None and frontier_size < args.min_frontier:
        print(f"frontier has {frontier_size} point(s), below the "
              f"--min-frontier {args.min_frontier} gate", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_sweep(args) -> int:
    import json as _json

    from repro.sweep.grid import SweepSpec, SweepValidationError

    request = _sweep_spec_from_args(args)
    try:
        spec = SweepSpec.from_request(request)
    except SweepValidationError as exc:
        print(f"bad sweep: {exc}", file=sys.stderr)
        return 2

    if args.submit:
        from repro.serve.client import ServeClient, ServeError

        client = ServeClient(host=args.host, port=args.port)
        try:
            if args.stream:
                data = None
                computed = 0
                for event in client.iter_sweep_stream(request):
                    if event.get("event") == "result":
                        data = event["data"]
                    else:
                        if event.get("event") == "finished":
                            computed = event.get("computed", 0)
                        print(_json.dumps(event, sort_keys=True))
                if data is None:
                    print("stream ended without a result", file=sys.stderr)
                    return 1
            else:
                resp = client.sweep(request)
                if not resp.ok:
                    print(f"HTTP {resp.status}: "
                          f"{resp.body.decode(errors='replace')}",
                          file=sys.stderr)
                    return 1
                data = resp.json
                computed = resp.cells_computed
                print(f"[sweep {resp.sweep_id} "
                      f"coalesced={int(resp.coalesced)} "
                      f"elapsed={resp.elapsed_ms:.1f}ms "
                      f"computed={computed} cached={resp.cells_cached}]",
                      file=sys.stderr)
        except (ServeError, ConnectionError, OSError) as exc:
            print(f"cannot reach server at {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        from repro.sweep.runner import run_sweep

        injector = make_injector(args)
        executor = make_executor(args, injector=injector)
        try:
            data, stats, _run = run_sweep(spec, executor)
        finally:
            executor.close()
        computed = stats.computed
        print(f"[{stats.seconds:.1f}s: {computed} computed, "
              f"{stats.cache_hits} cached, {stats.deduped} deduped "
              f"of {stats.submitted} cell(s); jobs={executor.jobs}]",
              file=sys.stderr)

    _print_sweep_outcome(data)
    if args.json:
        from pathlib import Path

        out = Path(args.json)
        out.write_text(_json.dumps(data, indent=2, sort_keys=True))
        print(f"[saved {out}]", file=sys.stderr)
    return _sweep_gates(args, data["frontier_size"], computed)


def _cmd_cache_prune(args) -> int:
    summary = _make_cache(args).prune(args.max_bytes)
    print(f"removed {summary['removed']} entry(ies), "
          f"freed {summary['freed_bytes']:,} bytes; "
          f"{summary['remaining_entries']} entry(ies) "
          f"({summary['remaining_bytes']:,} bytes) remain "
          f"<= {summary['max_bytes']:,} bytes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the ISCA'20 contiguity paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    def add_orchestrator_flags(p, default_jobs: int) -> None:
        p.add_argument(
            "--scale", choices=sorted(SCALES), default="quick",
            help="scale profile (default: quick)",
        )
        p.add_argument(
            "--json", metavar="DIR",
            help="also write each result as JSON into this directory",
        )
        p.add_argument(
            "--jobs", type=int, default=default_jobs, metavar="N",
            help=f"worker processes for cell fan-out (default: {default_jobs})",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="content-addressed run cache location (default: "
                 "$REPRO_CACHE_DIR or .repro-cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="compute every cell, skip cache reads and writes",
        )
        p.add_argument(
            "--cache-url", metavar="URL", default=None,
            help="shared read-through cache tier: a `repro serve` base "
                 "URL (e.g. http://127.0.0.1:8377); local misses are "
                 "fetched by digest before computing, and local stores "
                 "are pushed back (see docs/scaling.md)",
        )
        add_chaos_flags(p)

    def add_chaos_flags(p) -> None:
        p.add_argument(
            "--chaos-plan", metavar="SPEC", default=None,
            help="enable fault injection: a probability for every site "
                 "('0.2') or a site=p list ('cache.read=0.1,"
                 "pool.worker=0.3'); see docs/robustness.md",
        )
        p.add_argument(
            "--chaos-seed", type=int, default=0, metavar="N",
            help="seed for the fault plan (same seed => same faults; "
                 "default: 0)",
        )

    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument("experiment", nargs="+", help="experiment name(s)")
    add_orchestrator_flags(run_p, default_jobs=1)
    run_p.set_defaults(func=_cmd_run)

    suite_p = sub.add_parser("suite", help="run every experiment")
    add_orchestrator_flags(suite_p, default_jobs=os.cpu_count() or 1)
    suite_p.set_defaults(func=_cmd_suite)

    bench_p = sub.add_parser(
        "bench", help="A/B the scalar vs batched simulation engines"
    )
    bench_p.add_argument(
        "--scale", default=None,
        help="bench scale: test/quick/default/big/paper (default: "
             "$REPRO_BENCH_SCALE or default); 'paper' runs the "
             "face-value fault phase only (columnar full run + "
             "reference-engine projections)",
    )
    bench_p.add_argument(
        "--workload", default="svm", help="workload to replay (default: svm)",
    )
    bench_p.add_argument(
        "--trace-len", type=int, default=200_000,
        help="replay-phase trace length (default: 200000)",
    )
    bench_p.add_argument(
        "--out", default="BENCH_engine.json", metavar="FILE",
        help="JSON report path (default: BENCH_engine.json)",
    )
    bench_p.add_argument(
        "--min-walk-speedup", type=float, default=None, metavar="X",
        help="exit nonzero unless the walk-path phase beats the scalar "
             "engine by at least this factor (CI gate)",
    )
    bench_p.add_argument(
        "--min-fault-speedup", type=float, default=None, metavar="X",
        help="exit nonzero unless the fault phase's columnar engine "
             "beats the scalar engine by at least this factor (CI gate)",
    )
    bench_p.add_argument(
        "--fault-steps", type=int, default=None, metavar="N",
        help="cap the fault phase at N allocation steps per engine "
             "(CI smoke for the paper scale; default: all steps)",
    )
    bench_p.set_defaults(func=_cmd_bench)

    suite_bench_p = sub.add_parser(
        "bench-suite",
        help="A/B/C the orchestrator: serial vs parallel-cold vs warm",
    )
    suite_bench_p.add_argument(
        "--scale", choices=sorted(SCALES), default="quick",
        help="scale profile (default: quick)",
    )
    suite_bench_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan-out width for the parallel passes (default: all cores)",
    )
    suite_bench_p.add_argument(
        "--experiments", nargs="*", default=None, metavar="NAME",
        help="subset of experiments to bench (default: the whole suite)",
    )
    suite_bench_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="scratch cache directory — cleared before the cold pass "
             "(default: a private temp dir)",
    )
    suite_bench_p.add_argument(
        "--out", default="BENCH_suite.json", metavar="FILE",
        help="JSON report path (default: BENCH_suite.json)",
    )
    suite_bench_p.add_argument(
        "--min-warm-speedup", type=float, default=0.0, metavar="X",
        help="fail unless the warm pass beats serial by at least X times",
    )
    suite_bench_p.add_argument(
        "--min-cold-speedup", type=float, default=0.0, metavar="X",
        help="fail unless the parallel-cold pass beats serial by at "
             "least X times (skipped with a note on single-CPU boxes, "
             "where the comparison is meaningless)",
    )
    suite_bench_p.set_defaults(func=_cmd_bench_suite)

    serve_p = sub.add_parser(
        "serve", help="start the long-lived simulation service"
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8377,
                         help="bind port; 0 picks one (default: 8377)")
    serve_p.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="max jobs waiting to start before 503s (default: 16)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent jobs (default: 2)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per job's cell fan-out (default: 1, "
             "inline in the worker thread)",
    )
    serve_p.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint on 503 responses (default: 1)",
    )
    serve_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="run cache location (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    serve_p.add_argument(
        "--no-cache", action="store_true",
        help="recompute every request, skip the run cache (also "
             "disables the /v1/cache tier endpoints)",
    )
    serve_p.add_argument(
        "--cache-url", metavar="URL", default=None,
        help="upstream cache tier this server itself reads through "
             "(for chained tiers); usually unset — workers point their "
             "--cache-url at *this* server instead",
    )
    add_chaos_flags(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    soak_p = sub.add_parser(
        "chaos-soak",
        help="run the suite clean vs under a fault plan; fail unless "
             "results are byte-identical and every fault recovered",
    )
    soak_p.add_argument(
        "--scale", choices=sorted(SCALES), default="quick",
        help="scale profile (default: quick)",
    )
    soak_p.add_argument(
        "--quick", action="store_true",
        help="small grid (fast CI smoke) instead of the default grid",
    )
    soak_p.add_argument(
        "--experiments", nargs="*", default=None, metavar="NAME",
        help="explicit soak grid (default: a built-in grid; see --quick)",
    )
    soak_p.add_argument(
        "--plan", default="0.2", metavar="SPEC",
        help="fault plan (default: 0.2 on every site)",
    )
    soak_p.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="fault plan seed (default: 0)",
    )
    soak_p.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for the grid passes (default: 2)",
    )
    soak_p.add_argument(
        "--skip-serve", action="store_true",
        help="skip the HTTP serve phase (grid passes only)",
    )
    soak_p.add_argument(
        "--out", default="CHAOS_TRACE.json", metavar="FILE",
        help="fault trace / report path (default: CHAOS_TRACE.json)",
    )
    soak_p.set_defaults(func=_cmd_chaos_soak)

    submit_p = sub.add_parser(
        "submit", help="submit one experiment to a running server"
    )
    submit_p.add_argument("experiment", help="experiment name (see `list`)")
    submit_p.add_argument("--scale", choices=sorted(SCALES), default="quick",
                          help="scale profile (default: quick)")
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=8377)
    submit_p.add_argument(
        "--params", metavar="JSON", default=None,
        help='plan() overrides, e.g. \'{"policies": ["thp", "ca"]}\'',
    )
    submit_p.add_argument(
        "--stream", action="store_true",
        help="stream NDJSON progress events instead of waiting silently",
    )
    submit_p.add_argument(
        "--json", metavar="FILE", default=None,
        help="also save the full result payload as JSON",
    )
    submit_p.set_defaults(func=_cmd_submit)

    serve_bench_p = sub.add_parser(
        "bench-serve",
        help="load-test the serve layer: cold coalescing + warm latency",
    )
    serve_bench_p.add_argument(
        "--scale", choices=sorted(SCALES), default="quick",
        help="scale profile (default: quick)",
    )
    serve_bench_p.add_argument(
        "--experiment", default="fig11",
        help="experiment each client requests (default: fig11)",
    )
    serve_bench_p.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="concurrent clients (default: 8)",
    )
    serve_bench_p.add_argument(
        "--warm-rounds", type=int, default=5, metavar="N",
        help="warm requests per client (default: 5)",
    )
    serve_bench_p.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="server worker count (default: 2)",
    )
    serve_bench_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="scratch cache directory — cleared before the cold phase "
             "(default: a private temp dir)",
    )
    serve_bench_p.add_argument(
        "--out", default="BENCH_serve.json", metavar="FILE",
        help="JSON report path (default: BENCH_serve.json)",
    )
    serve_bench_p.add_argument(
        "--min-warm-speedup", type=float, default=0.0, metavar="X",
        help="fail unless warm p50 beats cold p50 by at least X times",
    )
    serve_bench_p.add_argument(
        "--max-warm-p50-ms", type=float, default=0.0, metavar="MS",
        help="fail if warm p50 latency exceeds MS milliseconds",
    )
    serve_bench_p.set_defaults(func=_cmd_bench_serve)

    transport_bench_p = sub.add_parser(
        "bench-transport",
        help="A/B the framed RPT1 transport against raw pickle on the "
             "checkpoint, chain-replay and cache-tier paths",
    )
    transport_bench_p.add_argument(
        "--scale", default="default",
        help="bench scale profile: test/quick/default/big (default: "
             "default)",
    )
    transport_bench_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="scratch cache directory for the chain phase — cleared "
             "before the cold pass (default: a private temp dir)",
    )
    transport_bench_p.add_argument(
        "--out", default="BENCH_transport.json", metavar="FILE",
        help="JSON report path (default: BENCH_transport.json)",
    )
    transport_bench_p.add_argument(
        "--min-size-reduction", type=float, default=2.0, metavar="X",
        help="fail unless delta checkpoints shrink raw pickle bytes by "
             "at least X times (default: 2.0; 0 disables)",
    )
    transport_bench_p.add_argument(
        "--min-throughput-ratio", type=float, default=1.5, metavar="X",
        help="fail unless framed dumps+loads beats raw pickle by at "
             "least X times (default: 1.5; 0 disables — use at the "
             "tiny test scale where framing overhead dominates)",
    )
    transport_bench_p.set_defaults(func=_cmd_bench_transport)

    sweep_p = sub.add_parser(
        "sweep",
        help="expand a policy x scheme x workload grid and report its "
             "Pareto frontier (locally or via a running server)",
    )
    sweep_p.add_argument(
        "--policies", default="thp,ca", metavar="LIST",
        help="comma-separated policy axis (default: thp,ca)",
    )
    sweep_p.add_argument(
        "--schemes", default="paging,spot,vrmm,ds", metavar="LIST",
        help="comma-separated scheme axis (default: paging,spot,vrmm,ds)",
    )
    sweep_p.add_argument(
        "--workloads", default="svm,pagerank,hashjoin", metavar="LIST",
        help="comma-separated workload axis (default: svm,pagerank,hashjoin)",
    )
    sweep_p.add_argument(
        "--scale", choices=sorted(SCALES), default="quick",
        help="scale profile (default: quick)",
    )
    sweep_p.add_argument(
        "--trace-len", type=int, default=50_000, metavar="N",
        help="simulated accesses per grid point (default: 50000)",
    )
    sweep_p.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="placement-run seed (default: 0)",
    )
    sweep_p.add_argument(
        "--hog", type=float, default=0.0, metavar="F",
        help="memory-hog pressure fraction in [0,1) (default: 0)",
    )
    sweep_p.add_argument(
        "--exclude", action="append", default=None, metavar="CLAUSE",
        help="drop grid points matching an axis=value[,axis=value] "
             "conjunction (repeatable)",
    )
    sweep_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for local cell fan-out (default: 1)",
    )
    sweep_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="run cache location (default: $REPRO_CACHE_DIR or "
             ".repro-cache)",
    )
    sweep_p.add_argument(
        "--no-cache", action="store_true",
        help="compute every cell, skip cache reads and writes",
    )
    sweep_p.add_argument(
        "--cache-url", metavar="URL", default=None,
        help="shared read-through cache tier (a `repro serve` base URL)",
    )
    sweep_p.add_argument(
        "--submit", action="store_true",
        help="POST the sweep to a running server instead of running "
             "locally",
    )
    sweep_p.add_argument("--host", default="127.0.0.1",
                         help="server address for --submit")
    sweep_p.add_argument("--port", type=int, default=8377,
                         help="server port for --submit")
    sweep_p.add_argument(
        "--stream", action="store_true",
        help="with --submit: stream per-cell NDJSON events",
    )
    sweep_p.add_argument(
        "--json", metavar="FILE", default=None,
        help="also save the full sweep payload as JSON",
    )
    sweep_p.add_argument(
        "--max-computed", type=int, default=None, metavar="N",
        help="fail if more than N cells were computed (CI gate; 0 "
             "asserts a fully-warm repeat)",
    )
    sweep_p.add_argument(
        "--min-frontier", type=int, default=None, metavar="N",
        help="fail unless the Pareto frontier has at least N points "
             "(CI gate)",
    )
    add_chaos_flags(sweep_p)
    sweep_p.set_defaults(func=_cmd_sweep)

    cache_p = sub.add_parser(
        "cache", help="inspect or prune the on-disk run cache"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    stats_p = cache_sub.add_parser("stats", help="entry count and size")
    stats_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache location (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    stats_p.add_argument(
        "--cache-url", metavar="URL", default=None,
        help="shared cache tier whose session counters to surface",
    )
    stats_p.set_defaults(func=_cmd_cache_stats)
    prune_p = cache_sub.add_parser(
        "prune", help="evict least-recently-used entries down to a budget"
    )
    prune_p.add_argument(
        "--max-bytes", type=parse_size, required=True, metavar="SIZE",
        help="target total size, e.g. 500000000, 500M or 2G",
    )
    prune_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache location (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    prune_p.set_defaults(func=_cmd_cache_prune)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
