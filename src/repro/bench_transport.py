"""Transport benchmark: ``python -m repro bench-transport``.

Measures the RPT1 framed transport (:mod:`repro.sim.transport`) against
the raw ``pickle.dumps(..., HIGHEST_PROTOCOL)`` path it replaced, on
the three byte-moving layers of the repo:

1. *checkpoint* — an aging CA+CA VM is carried through a workload
   chain; at every stage the VM state is serialized three ways (raw
   pickle, full framing, delta framing against the previous stage) and
   both directions are timed best-of-N.  The headline numbers —
   ``size_reduction`` (raw bytes over delta bytes) and
   ``throughput_ratio`` (raw dumps+loads seconds over framed delta
   dumps+loads seconds) — are the CI-gated perf contract of this
   bench.  Every delta is asserted to carry the same logical digest as
   the full framing of the same state before any timing is reported.
2. *chain* — a staged chain experiment runs cold then warm against a
   scratch :class:`~repro.sim.cache.RunCache`, the warm replay must be
   byte-identical, and then every cached entry is rewritten as a raw
   legacy pickle and replayed once more: the format migration must
   still be hit-for-hit byte-identical (old caches keep working).
3. *tier* — a live :class:`~repro.serve.loadgen.ServerThread` plays
   the shared tier; a checkpoint blob is PUT/GET through
   :class:`~repro.sim.cache.HttpCacheTier` and the bytes on the wire
   are compared with what the raw pickle would have shipped.  An
   Accept-less GET (an old peer) must receive a transcoded raw pickle
   that plain ``pickle.loads`` accepts.

The JSON written to ``BENCH_transport.json`` is the perf-tracking
artifact CI archives per commit.
"""

from __future__ import annotations

import json
import pickle
import platform
import time
from pathlib import Path

from repro.bench import BENCH_SCALES
from repro.sim import transport
from repro.sim.config import ScaleProfile

#: Workloads the checkpoint phase ages the VM through, in order.  Two
#: stages cross a delta boundary twice: stage 1 deltas against the
#: fresh-boot checkpoint, stage 2 against an already-aged one.
CHECKPOINT_WORKLOADS = ("svm", "pagerank")

#: Serialization timings are repeated this many times, best kept.
REPEATS = 3

#: The staged chain experiment the chain phase replays.
CHAIN_EXPERIMENT = "ext_vhc"

#: CI-smoke profile: the unit-test page budget per paper GB on a
#: machine big enough to virtualize the chain workloads (the plain
#: test machine OOMs backing a CA+CA guest under svm).
TRANSPORT_TEST_SCALE = ScaleProfile(
    name="transport-test", bytes_per_paper_gb=1 << 20,
    machine_paper_gb=(128, 128),
)

#: Chain-stage trace length per tier (the ``test`` tier mirrors the
#: chain-stage unit tests; larger tiers keep the experiment default).
TEST_TRACE_LEN = 5_000
DEFAULT_TRACE_LEN = 50_000


def _resolve_scale(scale_name: str) -> tuple[ScaleProfile, int]:
    if scale_name == "test":
        return TRANSPORT_TEST_SCALE, TEST_TRACE_LEN
    return BENCH_SCALES[scale_name], DEFAULT_TRACE_LEN


def _best_of(fn, repeats: int = REPEATS) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best seconds)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _aged_vms(scale: ScaleProfile, workloads):
    """Yield (stage name, VM) along one aging chain: fresh boot first,
    then after each workload ran and exited (the chain-checkpoint
    states the experiments actually serialize)."""
    from repro.experiments import common
    from repro.sim.runner import RunOptions, run_virtualized
    from repro.workloads import make_workload

    vm = common.virtual_machine("ca", "ca", scale)
    yield "boot", vm
    options = RunOptions(sample_every=None, exit_after=False)
    for name in workloads:
        r = run_virtualized(vm, make_workload(name, scale), options)
        vm.guest_exit_process(r.process)
        vm.guest_kernel.drop_caches()
        yield name, vm


def bench_checkpoint(scale: ScaleProfile,
                     workloads=CHECKPOINT_WORKLOADS,
                     repeats: int = REPEATS) -> dict:
    """Raw pickle vs framed full vs framed delta, per chain stage.

    The headline ``throughput_ratio`` times the *production* round
    trip: a checkpoint is a cache entry, so storing one is dumps plus
    the bytes hitting storage, and resuming is the bytes coming back
    plus loads.  Raw pickle ships the whole VM every stage; the framed
    delta ships kilobytes.  The pure in-memory dumps/loads timings are
    reported per stage as well (both paths are dominated there by
    pickling the VM's Python object graph, which the transport cannot
    and does not try to beat).
    """
    import tempfile

    from repro.experiments import common

    stages: list[dict] = []
    prev: list[common.ChainStage] = []
    totals = {
        "raw_bytes": 0, "full_bytes": 0, "delta_bytes": 0,
        "raw_seconds": 0.0, "framed_seconds": 0.0,
    }
    with tempfile.TemporaryDirectory(
        prefix="repro-ckpt-bench-"
    ) as scratch:
        scratch = Path(scratch)
        for stage_name, vm in _aged_vms(scale, workloads):
            raw_path = scratch / f"{stage_name}.raw"
            framed_path = scratch / f"{stage_name}.rpt1"

            def raw_store():
                blob = pickle.dumps(
                    vm, protocol=pickle.HIGHEST_PROTOCOL
                )
                raw_path.write_bytes(blob)
                return blob

            raw_blob, raw_store_s = _best_of(raw_store, repeats)
            _, raw_resume_s = _best_of(
                lambda: pickle.loads(raw_path.read_bytes()), repeats
            )
            _, raw_dumps_s = _best_of(
                lambda: pickle.dumps(
                    vm, protocol=pickle.HIGHEST_PROTOCOL
                ),
                repeats,
            )
            _, raw_loads_s = _best_of(
                lambda: pickle.loads(raw_blob), repeats
            )

            full_blob, full_dumps_s = _best_of(
                lambda: transport.dumps(vm), repeats
            )

            # The store is built once, outside the timed region: a
            # resuming executor already holds the parsed prior stages.
            store = transport.BufferStore()
            for s in prev:
                store.add_blob(s.state)
            base = prev[-1].state_digest if prev else None

            def framed_store():
                blob = transport.dumps(vm, store=store, base=base)
                framed_path.write_bytes(blob)
                return blob

            delta_blob, framed_store_s = _best_of(framed_store, repeats)
            store.add_blob(delta_blob)
            _, framed_resume_s = _best_of(
                lambda: transport.loads(
                    framed_path.read_bytes(), store=store
                ),
                repeats,
            )
            _, delta_dumps_s = _best_of(
                lambda: transport.dumps(vm, store=store, base=base),
                repeats,
            )
            _, delta_loads_s = _best_of(
                lambda: transport.loads(delta_blob, store=store),
                repeats,
            )

            digest = transport.blob_digest(delta_blob)
            if digest != transport.blob_digest(full_blob):
                raise AssertionError(
                    f"stage {stage_name}: delta digest diverged from full"
                )
            info = transport.blob_info(delta_blob)
            stages.append({
                "stage": stage_name,
                "raw_bytes": len(raw_blob),
                "full_bytes": len(full_blob),
                "delta_bytes": len(delta_blob),
                "ref_frames": info["ref_frames"],
                "raw_store_ms": round(raw_store_s * 1e3, 3),
                "raw_resume_ms": round(raw_resume_s * 1e3, 3),
                "framed_store_ms": round(framed_store_s * 1e3, 3),
                "framed_resume_ms": round(framed_resume_s * 1e3, 3),
                "raw_dumps_ms": round(raw_dumps_s * 1e3, 3),
                "raw_loads_ms": round(raw_loads_s * 1e3, 3),
                "full_dumps_ms": round(full_dumps_s * 1e3, 3),
                "delta_dumps_ms": round(delta_dumps_s * 1e3, 3),
                "delta_loads_ms": round(delta_loads_s * 1e3, 3),
            })
            totals["raw_bytes"] += len(raw_blob)
            totals["full_bytes"] += len(full_blob)
            totals["delta_bytes"] += len(delta_blob)
            totals["raw_seconds"] += raw_store_s + raw_resume_s
            totals["framed_seconds"] += framed_store_s + framed_resume_s
            prev.append(common.ChainStage(
                payload=None, state=delta_blob, state_digest=digest,
                base_digest=prev[-1].state_digest if prev else None,
            ))
    return {
        "workloads": list(workloads),
        "stages": stages,
        "raw_bytes": totals["raw_bytes"],
        "full_bytes": totals["full_bytes"],
        "delta_bytes": totals["delta_bytes"],
        "raw_seconds": round(totals["raw_seconds"], 4),
        "framed_seconds": round(totals["framed_seconds"], 4),
        "size_reduction": round(
            totals["raw_bytes"] / max(totals["delta_bytes"], 1), 2
        ),
        "full_size_reduction": round(
            totals["raw_bytes"] / max(totals["full_bytes"], 1), 2
        ),
        "throughput_ratio": round(
            totals["raw_seconds"] / max(totals["framed_seconds"], 1e-9), 2
        ),
        "digests_identical": True,  # asserted above, per stage
    }


def _chain_pass(scale: ScaleProfile, cache,
                trace_len: int) -> tuple[str, float, dict]:
    """One staged chain run; returns (canonical JSON, seconds, stats)."""
    import importlib
    from dataclasses import asdict

    from repro.experiments.serialize import to_jsonable
    from repro.sim.jobs import Executor

    module = importlib.import_module(
        f"repro.experiments.{CHAIN_EXPERIMENT}"
    )
    plan = module.plan(scale=scale, workloads=CHECKPOINT_WORKLOADS,
                       trace_len=trace_len, staged=True)
    executor = Executor(cache=cache)
    try:
        started = time.perf_counter()
        result = plan.assemble(executor.run(plan.cells))
        seconds = time.perf_counter() - started
    finally:
        executor.close()
    blob = json.dumps(to_jsonable(result), sort_keys=True,
                      separators=(",", ":"))
    return blob, seconds, asdict(executor.stats)


def bench_chain(scale: ScaleProfile, cache_root: Path,
                trace_len: int) -> dict:
    """Cold/warm staged chain + raw-legacy cache-format migration."""
    from repro.sim.cache import RunCache

    RunCache(cache_root).clear()
    cold_blob, cold_s, cold_stats = _chain_pass(
        scale, RunCache(cache_root), trace_len
    )
    warm_blob, warm_s, warm_stats = _chain_pass(
        scale, RunCache(cache_root), trace_len
    )

    # Migration: rewrite every cached entry as a raw legacy pickle and
    # replay once more — the decoder must keep serving old caches.
    cache = RunCache(cache_root)
    migrated = 0
    for path in cache.root.glob("*/*.pkl"):
        value = cache.decode_blob(path.read_bytes())
        path.write_bytes(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        migrated += 1
    legacy_blob, legacy_s, legacy_stats = _chain_pass(
        scale, RunCache(cache_root), trace_len
    )
    return {
        "experiment": CHAIN_EXPERIMENT,
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "legacy_warm_seconds": round(legacy_s, 3),
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
        "legacy_stats": legacy_stats,
        "entries_migrated_to_raw": migrated,
        "warm_identical": cold_blob == warm_blob,
        "legacy_identical": cold_blob == legacy_blob,
        "warm_all_hits": warm_stats["computed"] == 0,
        "legacy_all_hits": legacy_stats["computed"] == 0,
    }


def bench_tier(blob: bytes, value_raw_bytes: int) -> dict:
    """Bytes on the wire: framed tier traffic vs the raw equivalent."""
    import http.client

    from repro.serve.loadgen import ServerThread
    from repro.sim.cache import HttpCacheTier, RunCache

    import tempfile

    key = "ab" * 32
    with tempfile.TemporaryDirectory(prefix="repro-tier-bench-") as root:
        with ServerThread(cache=RunCache(root)) as server:
            tier = HttpCacheTier(f"http://127.0.0.1:{server.port}")
            assert tier.put(key, blob) == "stored"
            got = tier.get(key)
            assert got == blob, "tier did not return the framed bytes"

            # An Accept-less old peer must get a loadable raw pickle.
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                conn.request("GET", f"/v1/cache/{key}")
                resp = conn.getresponse()
                body = resp.read()
                old_peer_format = resp.getheader("X-Repro-Blob-Format")
            finally:
                conn.close()
            pickle.loads(body)  # must not raise
    return {
        "wire_bytes_framed": len(blob),
        "wire_bytes_raw_equivalent": value_raw_bytes,
        "wire_reduction": round(value_raw_bytes / max(len(blob), 1), 2),
        "old_peer_transcoded_bytes": len(body),
        "old_peer_format": old_peer_format,
        "old_peer_loads_ok": True,  # asserted above
        "client_bytes_sent": tier.bytes_sent,
        "client_bytes_received": tier.bytes_received,
    }


def run_transport_bench(scale_name: str = "default",
                        cache_root: str | Path | None = None) -> dict:
    """Run all phases; returns the JSON-ready report."""
    import shutil
    import tempfile

    scale, trace_len = _resolve_scale(scale_name)
    started = time.time()
    checkpoint = bench_checkpoint(scale)

    own_tmp = cache_root is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-transport-bench-"))
        if own_tmp else Path(cache_root)
    )
    try:
        chain = bench_chain(scale, root, trace_len)
    finally:
        if own_tmp:
            shutil.rmtree(root, ignore_errors=True)

    # The tier phase ships the chain's final checkpoint state — the
    # exact blob a federated worker would pull to resume the chain.
    from repro.experiments import common

    vm = None
    for _, vm in _aged_vms(scale, CHECKPOINT_WORKLOADS[:1]):
        pass
    blob, _ = common.checkpoint_vm(vm)
    raw_bytes = len(pickle.dumps(vm, protocol=pickle.HIGHEST_PROTOCOL))
    tier = bench_tier(blob, raw_bytes)

    return {
        "bench": "transport",
        "scale": scale_name,
        "python": platform.python_version(),
        "checkpoint": checkpoint,
        "chain": chain,
        "tier": tier,
        # Headline numbers perf tracking plots per commit.
        "size_reduction": checkpoint["size_reduction"],
        "throughput_ratio": checkpoint["throughput_ratio"],
        "wire_reduction": tier["wire_reduction"],
        "replay_identical": (
            chain["warm_identical"] and chain["legacy_identical"]
        ),
        "wall_seconds": round(time.time() - started, 1),
    }
