"""Job scheduling for the serve layer: admission, coalescing, workers.

Requests become :class:`Job`\\ s keyed by the **content address of the
cells they would run** (the same :func:`~repro.sim.cache.spec_digest`
the run cache uses).  Three mechanisms stack, mirroring the cache
hierarchy one level up:

- *in-flight coalescing* — a request whose key matches a queued or
  running job attaches to it instead of enqueuing a duplicate; all
  attached clients receive the **same response bytes**.  This is the
  serving-layer analogue of the executor's in-batch dedup (and the
  trick inference servers use for duplicate prompts): the cache
  dedupes across time, coalescing dedupes across concurrent clients.
- *admission control* — the queue is bounded; when it is full, submit
  raises :class:`QueueFull` and the server answers 503 with a
  ``Retry-After`` hint instead of accepting unbounded work.
- *worker fan-out* — N event-loop worker tasks pull jobs and run the
  blocking :class:`~repro.sim.jobs.Executor` in a thread pool, so the
  loop keeps answering health checks and metrics scrapes while
  simulations run.  Per-cell progress marshals back onto the loop via
  ``call_soon_threadsafe`` and fans out to NDJSON stream subscribers.

Response bodies are a pure function of (experiment, scale, params) —
timing and cache provenance travel in headers/events, never the body —
so coalesced, cold and warm answers to one request are byte-identical.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.chaos.clock import CLOCK
from repro.errors import ConfigError
from repro.serve.metrics import Registry
from repro.sim.cache import RunCache, code_version_salt, spec_digest
from repro.sim.jobs import (
    CELL_SECONDS_BUCKETS,
    Executor,
    ExecutorStats,
    Plan,
    run_plans,
)


class QueueFull(Exception):
    """Admission control rejected the job (queue at capacity)."""


class UnknownExperiment(ConfigError):
    """The request names an experiment the registry doesn't have."""


class BadRequest(ConfigError):
    """The request is malformed (bad scale, bad params, bad types)."""


def _tupled(value: Any) -> Any:
    """JSON params arrive with lists; cells need hashable tuples."""
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    if isinstance(value, dict):
        return {k: _tupled(v) for k, v in value.items()}
    return value


def default_plans_for(experiment: str, scale_name: str,
                      params: dict | None) -> list[tuple[str, Plan]]:
    """Build the ``(result_key, Plan)`` entries one request maps to.

    Mirrors the CLI's experiment registry; ``params`` (e.g.
    ``{"policies": ["thp", "ca"]}``) forward as keyword arguments to
    the experiment's ``plan()``.
    """
    import importlib

    from repro.cli import EXPERIMENTS, SCALES, experiment_plans

    if experiment not in EXPERIMENTS:
        raise UnknownExperiment(
            f"unknown experiment {experiment!r}; see GET /v1/experiments"
        )
    if scale_name not in SCALES:
        raise BadRequest(
            f"unknown scale {scale_name!r}; choose from {sorted(SCALES)}"
        )
    scale = SCALES[scale_name]
    if not params:
        return experiment_plans(experiment, scale)
    if experiment == "fig1":
        raise BadRequest("fig1 carries two sub-plans and takes no params")
    module = importlib.import_module(f"repro.experiments.{experiment}")
    try:
        plan = module.plan(scale=scale, **{
            k: _tupled(v) for k, v in params.items()
        })
    except TypeError as exc:
        raise BadRequest(f"bad params for {experiment}: {exc}") from exc
    return [(experiment, plan)]


@dataclass
class JobOutcome:
    """What a finished job hands every attached client."""

    status: str                 # "done" | "failed"
    body: bytes                 # canonical response body (or error JSON)
    elapsed_ms: float
    stats: dict                 # ExecutorStats snapshot for this job
    error: str | None = None


class Job:
    """One admitted unit of work plus everyone waiting on it."""

    kind = "run"

    def __init__(self, key: str, experiment: str, scale_name: str,
                 params: dict | None, entries: list[tuple[str, Plan]]):
        self.key = key
        self.experiment = experiment
        self.scale_name = scale_name
        self.params = params or {}
        self.entries = entries
        self.total_cells = sum(len(plan.cells) for _, plan in entries)
        self.joiners = 0            # coalesced attachments beyond the first
        self.outcome: asyncio.Future[JobOutcome] = (
            asyncio.get_running_loop().create_future()
        )
        self.events: list[dict] = []        # replayed to late subscribers
        self._subscribers: list[asyncio.Queue] = []

    @property
    def job_id(self) -> str:
        return self.key[:12]

    def subscribe(self) -> asyncio.Queue:
        """An event queue that replays history, then streams live.

        ``None`` terminates the stream (pushed after the final event).
        """
        q: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            q.put_nowait(event)
        if self.outcome.done():
            q.put_nowait(None)
        else:
            self._subscribers.append(q)
        return q

    def publish(self, event: dict, *, final: bool = False) -> None:
        """Record an event and fan it out (event-loop thread only)."""
        event = {"job": self.job_id, **event}
        self.events.append(event)
        for q in self._subscribers:
            q.put_nowait(event)
            if final:
                q.put_nowait(None)
        if final:
            self._subscribers.clear()


class SweepJob(Job):
    """A grid sweep admitted through the same queue as run jobs.

    Shares the coalescing map and admission control with ``/v1/run``:
    the key is the sweep digest (axes + the expanded cell specs), so
    two clients posting the same grid — however spelled — attach to
    one job and read identical bytes.
    """

    kind = "sweep"

    def __init__(self, key: str, spec):
        super().__init__(key, experiment="sweep", scale_name=spec.scale,
                         params=spec.as_dict(), entries=[])
        self.spec = spec
        points, cells, _refs = spec.expand()
        self.total_points = len(points)
        self.total_cells = len(cells)
        self.run = None             # SweepRun, set when execution starts
        self.result_data: dict | None = None   # parsed outcome when done


class Scheduler:
    """Bounded job queue + coalescing map + worker tasks.

    Parameters
    ----------
    queue_depth:
        Maximum jobs *waiting* to start (running jobs have left the
        queue).  Submissions beyond that raise :class:`QueueFull`.
    workers:
        Concurrent jobs: event-loop worker tasks, each backed by a
        thread in the executor pool.
    sim_jobs:
        ``jobs`` forwarded to each job's :class:`Executor` — ``1`` runs
        cells inline in the worker thread; ``>1`` fans out to worker
        processes (keeps the loop fully responsive during cold runs).
    cache:
        Shared :class:`RunCache`; ``None`` recomputes every request.
    plans_for:
        Request-to-plans mapping (overridable in tests / embeddings).
    retry_after:
        Seconds advertised in 503 ``Retry-After`` responses.
    injector:
        Optional :class:`~repro.chaos.FaultInjector` forwarded to every
        job's :class:`Executor` (and surfaced on ``/metrics``).
    clock:
        Time source for job timing (:data:`repro.chaos.CLOCK` by
        default; tests inject a :class:`~repro.chaos.FakeClock`).
    """

    def __init__(
        self,
        queue_depth: int = 16,
        workers: int = 2,
        sim_jobs: int = 1,
        cache: RunCache | None = None,
        plans_for: Callable[..., list[tuple[str, Plan]]] = default_plans_for,
        retry_after: float = 1.0,
        registry: Registry | None = None,
        injector=None,
        clock=None,
    ):
        self.queue_depth = max(1, int(queue_depth))
        self.workers = max(1, int(workers))
        self.sim_jobs = max(1, int(sim_jobs))
        self.cache = cache
        self.plans_for = plans_for
        self.retry_after = retry_after
        self.injector = injector
        self.clock = clock if clock is not None else CLOCK
        self._salt = cache.salt if cache is not None else code_version_salt()
        self._queue: asyncio.Queue[Job] = asyncio.Queue(
            maxsize=self.queue_depth
        )
        self._inflight: dict[str, Job] = {}
        self._tasks: list[asyncio.Task] = []
        self.totals = ExecutorStats()
        #: Sweep registry for /v1/sweep/<id> and /explorer — insertion
        #: ordered, bounded so long-lived servers don't hoard outcomes.
        self._sweeps: dict[str, SweepJob] = {}
        self.sweeps_keep = 32
        self.sweep_stream_clients = 0
        self.last_frontier_size = 0

        registry = registry if registry is not None else Registry()
        self.registry = registry
        self.m_jobs = registry.counter(
            "repro_jobs_total", "Jobs by terminal status.", label="status"
        )
        self.m_coalesced = registry.counter(
            "repro_coalesced_joins_total",
            "Requests that attached to an in-flight job instead of "
            "enqueuing a duplicate.",
        )
        self.m_rejected = registry.counter(
            "repro_queue_rejected_total",
            "Submissions rejected by admission control (503).",
        )
        registry.gauge(
            "repro_queue_depth", "Jobs waiting to start.",
            fn=lambda: self._queue.qsize(),
        )
        registry.gauge(
            "repro_inflight_jobs", "Jobs queued or running.",
            fn=lambda: len(self._inflight),
        )
        for name, help_text in (
            ("computed", "Cells computed by the simulator."),
            ("cache_hits", "Cells served from the run cache."),
            ("deduped", "Cells deduplicated within a batch."),
            ("pool_failures", "Worker-pool crashes survived."),
            ("retried_serial", "Cells recomputed serially after a crash."),
            ("worker_crashes", "Individual worker crashes absorbed."),
            ("cell_retries", "Backed-off cell retries after crashes."),
        ):
            registry.gauge(
                f"repro_cells_{name}", help_text,
                fn=lambda n=name: getattr(self.totals, n),
            )
        registry.gauge(
            "repro_cache_hit_ratio",
            "Run-cache hits / lookups since start (0 when idle).",
            fn=self._cache_hit_ratio,
        )
        registry.gauge(
            "repro_cache_corrupt_evictions",
            "Corrupt/truncated cache entries quarantined and missed.",
            fn=lambda: self.cache.corrupt_evictions if self.cache else 0,
        )
        registry.gauge(
            "repro_cache_write_failures",
            "Cache stores dropped because the disk write failed.",
            fn=lambda: self.cache.write_failures if self.cache else 0,
        )
        for name, help_text in (
            ("tier_hits", "Local misses served by the shared cache tier."),
            ("tier_misses", "Shared-tier lookups that also missed."),
            ("tier_stores", "Blobs written through to the shared tier."),
            ("tier_errors", "Shared-tier operations that failed."),
        ):
            registry.gauge(
                f"repro_cache_{name}", help_text,
                fn=lambda n=name: getattr(self.cache, n) if self.cache else 0,
            )
        self.m_sweeps = registry.counter(
            "repro_sweeps_total", "Sweep jobs by terminal status.",
            label="status",
        )
        self.m_sweep_points = registry.counter(
            "repro_sweep_points_total",
            "Grid points evaluated across finished sweeps.",
        )
        self.m_sweep_cells = registry.counter(
            "repro_sweep_cells_total",
            "Unique cells sweep grids mapped to (after dedup).",
        )
        self.m_sweep_cells_deduped = registry.counter(
            "repro_sweep_cells_deduped_total",
            "Point-cell references collapsed by grid dedup (scheme "
            "fan-out sharing one simulation).",
        )
        self.m_sweep_cells_computed = registry.counter(
            "repro_sweep_cells_computed_total",
            "Sweep cells actually computed (misses everywhere).",
        )
        registry.gauge(
            "repro_sweep_frontier_size",
            "Pareto frontier size of the most recently finished sweep.",
            fn=lambda: self.last_frontier_size,
        )
        registry.gauge(
            "repro_sweep_stream_clients",
            "NDJSON sweep streams currently attached.",
            fn=lambda: self.sweep_stream_clients,
        )
        self.m_cell_compute = registry.histogram(
            "repro_cell_compute_seconds",
            "Per-cell compute time inside executor workers.",
            buckets=CELL_SECONDS_BUCKETS,
        )
        self.m_cell_queue_wait = registry.histogram(
            "repro_cell_queue_wait_seconds",
            "Per-cell wait between pool submission and worker start.",
            buckets=CELL_SECONDS_BUCKETS,
        )
        if self.injector is not None:
            registry.func_counter(
                "repro_chaos_faults_total",
                "Injected faults fired, by site.", label="site",
                fn=self.injector.fired_by_site,
            )
            registry.func_counter(
                "repro_chaos_recovered_total",
                "Injected faults answered by a recovery action, by site.",
                label="site", fn=self.injector.recovered_by_site,
            )

    def _cache_hit_ratio(self) -> float:
        if self.cache is None:
            return 0.0
        lookups = self.cache.hits + self.cache.misses
        return self.cache.hits / lookups if lookups else 0.0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._tasks:
            return
        for i in range(self.workers):
            self._tasks.append(
                asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            )

    async def stop(self) -> None:
        """Cancel workers; in-flight outcomes resolve as failed."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        for job in list(self._inflight.values()):
            if not job.outcome.done():
                job.outcome.set_result(JobOutcome(
                    status="failed",
                    body=error_body("server shutting down"),
                    elapsed_ms=0.0, stats={}, error="server shutting down",
                ))
                job.publish({"event": "failed",
                             "error": "server shutting down"}, final=True)
        self._inflight.clear()

    # -- submission ---------------------------------------------------

    def request_key(self, experiment: str, scale_name: str,
                    params: dict | None,
                    entries: Sequence[tuple[str, Plan]]) -> str:
        """Content address of a request: digest of the cells it runs."""
        return spec_digest({
            "experiment": experiment,
            "scale": scale_name,
            "cells": [
                [key] + [c.spec() for c in plan.cells]
                for key, plan in entries
            ],
        }, self._salt)

    def submit(self, experiment: str, scale_name: str = "quick",
               params: dict | None = None) -> tuple[Job, bool]:
        """Admit (or coalesce) one request; returns ``(job, coalesced)``.

        Raises :class:`UnknownExperiment` / :class:`BadRequest` for
        unmappable requests and :class:`QueueFull` when admission
        control rejects.  Must be called on the event-loop thread.
        """
        entries = self.plans_for(experiment, scale_name, params)
        key = self.request_key(experiment, scale_name, params, entries)
        existing = self._inflight.get(key)
        if existing is not None:
            existing.joiners += 1
            self.m_coalesced.inc()
            return existing, True
        job = Job(key, experiment, scale_name, params, entries)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.m_rejected.inc()
            raise QueueFull(
                f"queue full ({self.queue_depth} waiting jobs)"
            ) from None
        self._inflight[key] = job
        job.publish({
            "event": "queued", "experiment": experiment,
            "scale": scale_name, "total_cells": job.total_cells,
            "queue_depth": self._queue.qsize(),
        })
        return job, False

    def submit_sweep(self, data: Any) -> tuple[SweepJob, bool]:
        """Admit (or coalesce) one sweep request.

        Validation errors surface as
        :class:`~repro.sweep.grid.SweepValidationError` (a
        :class:`~repro.errors.ConfigError`, answered 400); a full queue
        raises :class:`QueueFull` exactly like ``/v1/run``.
        """
        from repro.sweep.grid import SweepSpec

        spec = SweepSpec.from_request(data)
        key = spec.digest(self._salt)
        existing = self._inflight.get(key)
        if isinstance(existing, SweepJob):
            existing.joiners += 1
            self.m_coalesced.inc()
            return existing, True
        job = SweepJob(key, spec)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.m_rejected.inc()
            raise QueueFull(
                f"queue full ({self.queue_depth} waiting jobs)"
            ) from None
        self._inflight[key] = job
        self._sweeps[job.job_id] = job
        while len(self._sweeps) > self.sweeps_keep:
            self._sweeps.pop(next(iter(self._sweeps)))
        job.publish({
            "event": "queued", "kind": "sweep", "scale": spec.scale,
            "points": job.total_points, "unique_cells": job.total_cells,
            "queue_depth": self._queue.qsize(),
        })
        return job, False

    def get_sweep(self, sweep_id: str) -> SweepJob | None:
        return self._sweeps.get(sweep_id)

    def sweep_entries(self, limit: int = 8) -> list[dict]:
        """Newest-first explorer entries for the registered sweeps."""
        entries = []
        for job in reversed(list(self._sweeps.values())):
            if len(entries) >= limit:
                break
            if job.outcome.done():
                outcome = job.outcome.result()
                state = outcome.status
            else:
                state = "running" if job.run is not None else "queued"
            entries.append({
                "id": job.job_id,
                "state": state,
                "status": job.run.status() if job.run is not None else {},
                "outcome": job.result_data,
            })
        return entries

    def cancel_sweep(self, sweep_id: str) -> SweepJob | None:
        """Flag a sweep to stop at its next wave boundary.

        Returns the job (``None`` when unknown).  Already-finished
        sweeps are returned unchanged — cancel is idempotent.
        """
        job = self._sweeps.get(sweep_id)
        if job is None:
            return None
        if job.run is not None:
            job.run.cancel()
        else:
            # Not started yet: pre-cancel by attaching a flag the
            # runner checks the moment it builds the SweepRun.
            job.cancel_requested = True
        return job

    # -- execution ----------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                await self._run(job)
            finally:
                self._inflight.pop(job.key, None)
                self._queue.task_done()

    async def _run(self, job: Job) -> None:
        if isinstance(job, SweepJob):
            await self._run_sweep(job)
            return
        loop = asyncio.get_running_loop()
        job.publish({"event": "started", "experiment": job.experiment,
                     "scale": job.scale_name})
        done_cells = 0

        def on_cell(source: str, c) -> None:
            # Fires in the executor thread; marshal onto the loop.
            loop.call_soon_threadsafe(_publish_cell, source, c.label())

        def _publish_cell(source: str, label: str) -> None:
            nonlocal done_cells
            done_cells += 1
            job.publish({
                "event": "cell-done", "source": source, "cell": label,
                "done": done_cells, "total": job.total_cells,
            })

        executor = Executor(jobs=self.sim_jobs, cache=self.cache,
                            progress=on_cell, injector=self.injector,
                            clock=self.clock)
        started = self.clock.monotonic()
        try:
            body = await loop.run_in_executor(
                None, self._compute, job, executor
            )
            elapsed_ms = (self.clock.monotonic() - started) * 1000.0
            outcome = JobOutcome(
                status="done", body=body, elapsed_ms=elapsed_ms,
                stats=_stats_dict(executor.stats),
            )
            self.m_jobs.inc("done")
        except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
            elapsed_ms = (self.clock.monotonic() - started) * 1000.0
            message = f"{type(exc).__name__}: {exc}"
            outcome = JobOutcome(
                status="failed", body=error_body(message),
                elapsed_ms=elapsed_ms, stats=_stats_dict(executor.stats),
                error=message,
            )
            self.m_jobs.inc("failed")
        self.totals.merge(executor.stats)
        self.m_cell_compute.hist.merge(executor.compute_hist)
        self.m_cell_queue_wait.hist.merge(executor.queue_wait_hist)
        executor.close()
        job.outcome.set_result(outcome)
        if outcome.status == "done":
            job.publish({
                "event": "finished", "elapsed_ms": round(elapsed_ms, 3),
                "coalesced_joins": job.joiners, **outcome.stats,
            })
            job.publish({
                "event": "result",
                "data": json.loads(outcome.body.decode()),
            }, final=True)
        else:
            job.publish({"event": "failed", "error": outcome.error,
                         "elapsed_ms": round(elapsed_ms, 3)}, final=True)

    async def _run_sweep(self, job: SweepJob) -> None:
        """Drive one sweep job; same outcome/event contract as runs.

        The sweep gets its own fresh :class:`Executor` over the shared
        cache (like every run job), so its stats are exact per-sweep
        deltas; per-point progress marshals from the runner thread onto
        the loop and fans out to NDJSON subscribers.
        """
        from repro.sweep.runner import SweepCancelled, SweepRun

        loop = asyncio.get_running_loop()
        job.publish({"event": "started", "kind": "sweep",
                     "scale": job.scale_name, "points": job.total_points,
                     "unique_cells": job.total_cells})

        def on_event(event: dict) -> None:
            # Fires in the runner thread; marshal onto the loop.
            loop.call_soon_threadsafe(job.publish, event)

        executor = Executor(jobs=self.sim_jobs, cache=self.cache,
                            injector=self.injector, clock=self.clock)
        run = SweepRun(spec=job.spec, executor=executor, on_event=on_event)
        job.run = run
        if getattr(job, "cancel_requested", False):
            run.cancel()
        started = self.clock.monotonic()
        try:
            data = await loop.run_in_executor(None, run.run)
            elapsed_ms = (self.clock.monotonic() - started) * 1000.0
            body = json.dumps(
                data, sort_keys=True, separators=(",", ":")
            ).encode()
            job.result_data = data
            outcome = JobOutcome(
                status="done", body=body, elapsed_ms=elapsed_ms,
                stats=_stats_dict(executor.stats),
            )
            self.m_jobs.inc("done")
            self.m_sweeps.inc("done")
            self.m_sweep_points.inc(n=job.total_points)
            self.m_sweep_cells.inc(n=job.total_cells)
            self.m_sweep_cells_deduped.inc(
                n=2 * job.total_points - job.total_cells
            )
            self.m_sweep_cells_computed.inc(n=executor.stats.computed)
            self.last_frontier_size = data["frontier_size"]
        except SweepCancelled as exc:
            elapsed_ms = (self.clock.monotonic() - started) * 1000.0
            message = str(exc)
            outcome = JobOutcome(
                status="cancelled", body=error_body(message),
                elapsed_ms=elapsed_ms, stats=_stats_dict(executor.stats),
                error=message,
            )
            self.m_jobs.inc("cancelled")
            self.m_sweeps.inc("cancelled")
        except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
            elapsed_ms = (self.clock.monotonic() - started) * 1000.0
            message = f"{type(exc).__name__}: {exc}"
            outcome = JobOutcome(
                status="failed", body=error_body(message),
                elapsed_ms=elapsed_ms, stats=_stats_dict(executor.stats),
                error=message,
            )
            self.m_jobs.inc("failed")
            self.m_sweeps.inc("failed")
        self.totals.merge(executor.stats)
        self.m_cell_compute.hist.merge(executor.compute_hist)
        self.m_cell_queue_wait.hist.merge(executor.queue_wait_hist)
        executor.close()
        job.outcome.set_result(outcome)
        if outcome.status == "done":
            job.publish({
                "event": "finished", "kind": "sweep",
                "elapsed_ms": round(elapsed_ms, 3),
                "coalesced_joins": job.joiners, **outcome.stats,
            })
            job.publish({
                "event": "result",
                "data": json.loads(outcome.body.decode()),
            }, final=True)
        else:
            job.publish({"event": outcome.status, "kind": "sweep",
                         "error": outcome.error,
                         "elapsed_ms": round(elapsed_ms, 3)}, final=True)

    def _compute(self, job: Job, executor: Executor) -> bytes:
        """Run the job's plans and render the canonical body (thread)."""
        from repro.experiments.serialize import to_jsonable

        results = run_plans([plan for _, plan in job.entries], executor)
        payload: dict[str, Any] = {
            "experiment": job.experiment,
            "scale": job.scale_name,
            "results": {}, "reports": {},
        }
        for (key, _plan), result in zip(job.entries, results):
            payload["results"][key] = to_jsonable(result)
            payload["reports"][key] = result.report()
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()


def _stats_dict(stats: ExecutorStats) -> dict:
    import dataclasses

    return dataclasses.asdict(stats)


def error_body(message: str) -> bytes:
    """Canonical JSON error body."""
    return json.dumps({"error": message}).encode()
