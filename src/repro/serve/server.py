"""Stdlib asyncio HTTP/1.1 server exposing the experiment registry.

Endpoints::

    GET  /healthz            liveness + queue snapshot
    GET  /v1/experiments     experiment registry with descriptions
    GET  /metrics            Prometheus text exposition
    POST /v1/run             {"experiment", "scale", "params"} -> result
    POST /v1/run?stream=1    NDJSON progress events, result last
    GET  /v1/cache/<key>     shared-tier blob fetch (octet-stream | 404)
    PUT  /v1/cache/<key>     shared-tier blob publish (201 stored |
                             200 already present: first writer wins)
    POST /v1/sweep           {"policies", "schemes", "workloads", ...}
                             -> grid sweep result (Pareto frontier)
    POST /v1/sweep?stream=1  NDJSON per-cell events, result last
    GET  /v1/sweep/<id>      per-cell sweep state snapshot
    POST /v1/sweep/<id>/cancel  stop at the next wave boundary
    GET  /explorer           self-contained HTML frontier explorer

Design notes.  One connection serves one request (``Connection:
close``) — parsing stays trivial and a load generator saturates it
fine.  Response *bodies* for ``/v1/run`` are a pure function of the
request spec; volatile facts (timing, coalescing, cache provenance)
travel in ``X-Repro-*`` headers so concurrent, cold and warm answers
to the same request are byte-identical.  Streaming responses carry no
``Content-Length`` and are delimited by connection close, which every
HTTP/1.1 client understands.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.chaos.clock import CLOCK
from repro.serve.metrics import Registry
from repro.sim import transport
from repro.serve.scheduler import (
    BadRequest,
    Job,
    JobOutcome,
    QueueFull,
    Scheduler,
    UnknownExperiment,
    default_plans_for,
    error_body,
)
from repro.sim.cache import RunCache

REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Limits keeping a misbehaving client from holding memory or sockets.
MAX_HEADER_LINE = 8192
MAX_HEADERS = 64
MAX_TARGET = 2048
MAX_BODY = 1 << 20
#: Cache-tier PUTs carry pickled cell results — chain-stage checkpoints
#: serialize whole VMs, far past the JSON request cap.
CACHE_MAX_BODY = 64 << 20
READ_TIMEOUT = 30.0

JSON_TYPE = "application/json"
NDJSON_TYPE = "application/x-ndjson"
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ReproServer:
    """The serve-layer composition root: scheduler + HTTP front end."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8377,
        queue_depth: int = 16,
        workers: int = 2,
        sim_jobs: int = 1,
        cache: RunCache | None = None,
        plans_for=default_plans_for,
        retry_after: float = 1.0,
        read_timeout: float = READ_TIMEOUT,
        max_body: int = MAX_BODY,
        injector=None,
        clock=None,
    ):
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.max_body = max_body
        self.injector = injector
        self.clock = clock if clock is not None else CLOCK
        self._conn_seq = 0
        self.registry = Registry()
        self.m_requests = self.registry.counter(
            "repro_requests_total", "HTTP requests by endpoint.",
            label="endpoint",
        )
        self.m_responses = self.registry.counter(
            "repro_responses_total", "HTTP responses by status code.",
            label="code",
        )
        self.m_latency = self.registry.histogram(
            "repro_request_seconds",
            "Wall-clock request latency (connection accept to last byte).",
        )
        self.m_dropped = self.registry.counter(
            "repro_connections_dropped_total",
            "Connections dropped before reading (injected accept faults).",
        )
        self.m_cache_tier = self.registry.counter(
            "repro_cache_tier_requests_total",
            "Shared-tier blob operations served, by outcome.",
            label="outcome",
        )
        self.m_cache_tier_bytes = self.registry.counter(
            "repro_cache_tier_bytes_total",
            "Shared-tier blob body bytes on the wire, by direction.",
            label="direction",
        )
        self.scheduler = Scheduler(
            queue_depth=queue_depth, workers=workers, sim_jobs=sim_jobs,
            cache=cache, plans_for=plans_for, retry_after=retry_after,
            registry=self.registry, injector=injector, clock=self.clock,
        )
        self.started = self.clock.wall()
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and spawn the scheduler workers.

        ``port=0`` binds an ephemeral port; ``self.port`` is updated to
        the bound value either way.
        """
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    def run(self) -> None:  # pragma: no cover - interactive entry point
        """Blocking convenience runner (the CLI's ``repro serve``)."""

        async def _main():
            await self.start()
            print(f"repro serve listening on http://{self.host}:{self.port} "
                  f"(queue={self.scheduler.queue_depth}, "
                  f"workers={self.scheduler.workers})")
            try:
                await self.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # -- connection handling ------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        started = self.clock.monotonic()
        conn_id = self._conn_seq
        self._conn_seq += 1
        try:
            if self.injector is not None:
                record = self.injector.fire("serve.accept", f"conn{conn_id}")
                if record is not None:
                    # Drop the connection before reading a byte — the
                    # client retries; the server must degrade cleanly,
                    # never crash or leak the socket.
                    self.m_dropped.inc()
                    self.injector.recover(record, "dropped_for_retry")
                    return
            try:
                method, target, headers, body = await self._read_request(
                    reader, conn_id
                )
            except _HttpError as exc:
                await self._respond_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            except asyncio.TimeoutError:
                # A stalled client gets a definite answer, not a hang.
                await self._respond_json(
                    writer, 408, {"error": "request read timed out"}
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request
            await self._dispatch(writer, method, target, headers, body)
        except ConnectionError:  # pragma: no cover - client reset mid-write
            pass
        finally:
            self.m_latency.observe(self.clock.monotonic() - started)
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            conn_id: int = 0):
        line = await self.clock.wait_for(
            reader.readline(), self.read_timeout
        )
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        if len(line) > MAX_HEADER_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        if len(target) > MAX_TARGET:
            raise _HttpError(400, "request target too long")
        headers: dict[str, str] = {}
        while True:
            line = await self.clock.wait_for(
                reader.readline(), self.read_timeout
            )
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > MAX_HEADER_LINE or len(headers) >= MAX_HEADERS:
                raise _HttpError(400, "headers too large")
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if length < 0:
                raise _HttpError(400, "bad Content-Length")
            # Blob PUTs on the cache tier get their own (much larger)
            # cap; everything else keeps the tight JSON-body limit.
            body_cap = (
                CACHE_MAX_BODY if target.startswith("/v1/cache/")
                else self.max_body
            )
            if length > body_cap:
                raise _HttpError(
                    413, f"body exceeds {body_cap} bytes"
                )
            if self.injector is not None:
                record = self.injector.fire("serve.body", f"conn{conn_id}")
                if record is not None:
                    # Model a body that never finishes arriving: the
                    # guard answers 408 instead of holding the socket.
                    self.injector.recover(record, "timeout_408")
                    raise asyncio.TimeoutError("injected body stall")
            body = await self.clock.wait_for(
                reader.readexactly(length), self.read_timeout
            )
        return method, target, headers, body

    async def _dispatch(self, writer, method: str, target: str,
                        headers: dict, body: bytes) -> None:
        url = urlsplit(target)
        path = url.path
        # Per-key cache and per-id sweep paths collapse to one label
        # value each — a fleet syncing thousands of digests must not
        # explode the cardinality of the requests counter.
        if path.startswith("/v1/cache/"):
            label = "/v1/cache"
        elif path.startswith("/v1/sweep/"):
            label = "/v1/sweep/id"
        else:
            label = path
        self.m_requests.inc(label)
        if path == "/healthz" and method == "GET":
            await self._respond_json(writer, 200, {
                "status": "ok",
                "uptime_seconds": round(self.clock.wall() - self.started, 3),
                "queue_depth": self.scheduler._queue.qsize(),
                "inflight": len(self.scheduler._inflight),
            })
        elif path == "/v1/experiments" and method == "GET":
            from repro.cli import EXPERIMENTS, SCALES

            await self._respond_json(writer, 200, {
                "experiments": dict(EXPERIMENTS),
                "scales": sorted(SCALES),
            })
        elif path == "/metrics" and method == "GET":
            await self._respond(
                writer, 200, self.registry.render().encode(),
                content_type=METRICS_TYPE,
            )
        elif path == "/v1/run":
            if method != "POST":
                await self._respond_json(
                    writer, 405, {"error": "POST required"},
                    extra=[("Allow", "POST")],
                )
                return
            stream = parse_qs(url.query).get("stream", ["0"])[0] not in (
                "0", "", "false"
            )
            await self._handle_run(writer, body, stream)
        elif path.startswith("/v1/cache/"):
            await self._handle_cache(
                writer, method, path[len("/v1/cache/"):], headers, body
            )
        elif path == "/v1/sweep":
            if method != "POST":
                await self._respond_json(
                    writer, 405, {"error": "POST required"},
                    extra=[("Allow", "POST")],
                )
                return
            stream = parse_qs(url.query).get("stream", ["0"])[0] not in (
                "0", "", "false"
            )
            await self._handle_sweep(writer, body, stream)
        elif path.startswith("/v1/sweep/"):
            await self._handle_sweep_status(
                writer, method, path[len("/v1/sweep/"):]
            )
        elif path == "/explorer" and method == "GET":
            from repro.sweep.explorer import render_explorer

            page = render_explorer(self.scheduler.sweep_entries())
            await self._respond(
                writer, 200, page.encode(),
                content_type="text/html; charset=utf-8",
            )
        else:
            await self._respond_json(
                writer, 404, {"error": f"no route for {method} {path}"}
            )

    async def _handle_run(self, writer, body: bytes, stream: bool) -> None:
        try:
            request = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            await self._respond_json(writer, 400, {"error": "body is not JSON"})
            return
        if not isinstance(request, dict) or "experiment" not in request:
            await self._respond_json(
                writer, 400,
                {"error": 'body must be {"experiment": ..., "scale": ...}'},
            )
            return
        experiment = request["experiment"]
        scale = request.get("scale", "quick")
        params = request.get("params") or None
        if params is not None and not isinstance(params, dict):
            await self._respond_json(
                writer, 400, {"error": "params must be an object"}
            )
            return
        try:
            job, coalesced = self.scheduler.submit(experiment, scale, params)
        except UnknownExperiment as exc:
            await self._respond_json(writer, 404, {"error": str(exc)})
            return
        except BadRequest as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        except QueueFull as exc:
            await self._respond_json(
                writer, 503, {"error": str(exc)},
                extra=[("Retry-After", f"{self.scheduler.retry_after:g}")],
            )
            return
        if stream:
            await self._stream_job(writer, job, coalesced)
        else:
            outcome = await asyncio.shield(job.outcome)
            await self._respond_outcome(writer, job, outcome, coalesced)

    async def _handle_sweep(self, writer, body: bytes, stream: bool) -> None:
        from repro.sweep.grid import SweepValidationError

        try:
            request = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            await self._respond_json(writer, 400, {"error": "body is not JSON"})
            return
        try:
            job, coalesced = self.scheduler.submit_sweep(request)
        except SweepValidationError as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        except QueueFull as exc:
            await self._respond_json(
                writer, 503, {"error": str(exc)},
                extra=[("Retry-After", f"{self.scheduler.retry_after:g}")],
            )
            return
        if stream:
            self.scheduler.sweep_stream_clients += 1
            try:
                await self._stream_job(writer, job, coalesced)
            finally:
                self.scheduler.sweep_stream_clients -= 1
        else:
            outcome = await asyncio.shield(job.outcome)
            stats = outcome.stats or {}
            extra = [
                ("X-Repro-Sweep", job.job_id),
                ("X-Repro-Sweep-Points", str(job.total_points)),
                ("X-Repro-Sweep-Cells", str(job.total_cells)),
                ("X-Repro-Coalesced", "1" if coalesced else "0"),
                ("X-Repro-Elapsed-Ms", f"{outcome.elapsed_ms:.3f}"),
                ("X-Repro-Cells-Computed", str(stats.get("computed", 0))),
                ("X-Repro-Cells-Cached", str(stats.get("cache_hits", 0))),
            ]
            status = 200 if outcome.status == "done" else 500
            await self._respond(writer, status, outcome.body,
                                content_type=JSON_TYPE, extra=extra)

    async def _handle_sweep_status(self, writer, method: str,
                                   rest: str) -> None:
        """``GET /v1/sweep/<id>`` and ``POST /v1/sweep/<id>/cancel``."""
        sweep_id, _, action = rest.partition("/")
        job = self.scheduler.get_sweep(sweep_id)
        if job is None:
            await self._respond_json(
                writer, 404, {"error": f"no sweep {sweep_id!r}"}
            )
            return
        if action == "" and method == "GET":
            if job.outcome.done():
                state = job.outcome.result().status
            else:
                state = "running" if job.run is not None else "queued"
            payload = {
                "sweep": job.job_id,
                "state": state,
                "points": job.total_points,
                "unique_cells": job.total_cells,
                "coalesced_joins": job.joiners,
            }
            if job.run is not None:
                payload.update(job.run.status())
            if job.result_data is not None:
                payload["frontier_labels"] = (
                    job.result_data["frontier_labels"]
                )
                payload["frontier_size"] = job.result_data["frontier_size"]
            await self._respond_json(writer, 200, payload)
        elif action == "cancel" and method == "POST":
            self.scheduler.cancel_sweep(sweep_id)
            await self._respond_json(writer, 200, {
                "sweep": job.job_id,
                "cancelled": not job.outcome.done(),
            })
        else:
            await self._respond_json(
                writer, 404,
                {"error": f"no route for {method} /v1/sweep/{rest}"},
            )

    async def _handle_cache(self, writer, method: str, key: str,
                            headers: dict, body: bytes) -> None:
        """The shared blob tier: GET/PUT cell-result blobs by digest.

        The server stores and serves bytes; deserialization (and
        corruption quarantine) stays on the client side.  PUT is
        first-writer-wins (single-writer promotion): a digest already
        present answers 200 without touching disk, so a fleet racing to
        publish the same result writes it once.

        Blob format negotiation: a GET carrying ``X-Repro-Blob-Accept``
        listing ``rpt1`` receives framed entries verbatim, labelled
        ``X-Repro-Blob-Format: rpt1``.  A GET from an old peer (no
        Accept header) gets framed entries transcoded to a raw pickle —
        the one place the server touches blob contents, and only for
        backward compatibility; a framed entry that will not decode
        answers 404 rather than shipping bytes the old client cannot
        read.  Raw legacy entries are served verbatim either way.
        """
        cache = self.scheduler.cache
        if cache is None:
            await self._respond_json(
                writer, 404, {"error": "cache tier disabled (--no-cache)"}
            )
            return
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            await self._respond_json(
                writer, 400,
                {"error": "key must be a 64-char lowercase hex digest"},
            )
            return
        loop = asyncio.get_running_loop()
        if method == "GET":
            blob = await loop.run_in_executor(None, cache.read_blob, key)
            if blob is None:
                self.m_cache_tier.inc("get_miss")
                await self._respond_json(
                    writer, 404, {"error": f"no blob for {key[:12]}"}
                )
                return
            fmt = "rpt1" if transport.is_framed(blob) else "raw"
            accepts = headers.get("x-repro-blob-accept", "")
            if fmt == "rpt1" and "rpt1" not in accepts:
                blob = await loop.run_in_executor(
                    None, _transcode_to_raw, blob
                )
                if blob is None:
                    self.m_cache_tier.inc("get_transcode_failed")
                    await self._respond_json(
                        writer, 404,
                        {"error": f"blob for {key[:12]} cannot be "
                                  "transcoded for a raw-only peer"},
                    )
                    return
                self.m_cache_tier.inc("get_transcoded")
                fmt = "raw"
            else:
                self.m_cache_tier.inc("get_hit")
            self.m_cache_tier_bytes.inc("get", len(blob))
            await self._respond(
                writer, 200, blob,
                content_type="application/octet-stream",
                extra=[("X-Repro-Blob-Format", fmt)],
            )
        elif method == "PUT":
            outcome = await loop.run_in_executor(
                None, lambda: cache.write_blob(key, body, overwrite=False)
            )
            if outcome == "stored":
                self.m_cache_tier.inc("put_stored")
                self.m_cache_tier_bytes.inc("put", len(body))
                await self._respond_json(writer, 201, {"stored": key})
            elif outcome == "exists":
                self.m_cache_tier.inc("put_exists")
                await self._respond_json(writer, 200, {"exists": key})
            else:
                self.m_cache_tier.inc("put_failed")
                await self._respond_json(
                    writer, 500, {"error": "blob store failed"}
                )
        else:
            await self._respond_json(
                writer, 405, {"error": "GET or PUT required"},
                extra=[("Allow", "GET, PUT")],
            )

    async def _respond_outcome(self, writer, job: Job, outcome: JobOutcome,
                               coalesced: bool) -> None:
        stats = outcome.stats or {}
        extra = [
            ("X-Repro-Job", job.job_id),
            ("X-Repro-Coalesced", "1" if coalesced else "0"),
            ("X-Repro-Elapsed-Ms", f"{outcome.elapsed_ms:.3f}"),
            ("X-Repro-Cells-Computed", str(stats.get("computed", 0))),
            ("X-Repro-Cells-Cached", str(stats.get("cache_hits", 0))),
            ("X-Repro-Cells-Deduped", str(stats.get("deduped", 0))),
        ]
        status = 200 if outcome.status == "done" else 500
        await self._respond(writer, status, outcome.body,
                            content_type=JSON_TYPE, extra=extra)

    async def _stream_job(self, writer, job: Job, coalesced: bool) -> None:
        events = job.subscribe()
        head = [
            ("Content-Type", NDJSON_TYPE),
            ("X-Repro-Job", job.job_id),
            ("X-Repro-Coalesced", "1" if coalesced else "0"),
            ("Connection", "close"),
            ("Cache-Control", "no-store"),
        ]
        self.m_responses.inc("200")
        writer.write(_head(200, head))
        await writer.drain()
        while True:
            event = await events.get()
            if event is None:
                break
            writer.write(json.dumps(event, sort_keys=True).encode() + b"\n")
            try:
                await writer.drain()
            except ConnectionError:
                return  # subscriber gone; job itself keeps running

    # -- response plumbing --------------------------------------------

    async def _respond_json(self, writer, status: int, payload: dict,
                            extra: list[tuple[str, str]] | None = None
                            ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        await self._respond(writer, status, body, content_type=JSON_TYPE,
                            extra=extra)

    async def _respond(self, writer, status: int, body: bytes,
                       content_type: str = JSON_TYPE,
                       extra: list[tuple[str, str]] | None = None) -> None:
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
        ] + list(extra or [])
        self.m_responses.inc(str(status))
        writer.write(_head(status, headers) + body)
        await writer.drain()


def _transcode_to_raw(blob: bytes) -> bytes | None:
    """Re-pickle a framed blob for a peer that predates RPT1.

    Runs on the executor thread pool (decode + re-pickle can be
    milliseconds on VM checkpoints).  ``None`` means the framed entry
    is corrupt or self-referential (a delta needing its base) — the old
    peer gets a 404 and recomputes locally, which is the transparent-
    fallback contract.
    """
    import pickle

    try:
        value = transport.loads(blob)
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


def _head(status: int, headers: list[tuple[str, str]]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def build_server(args) -> ReproServer:
    """Construct a server from parsed ``repro serve`` CLI args."""
    injector = None
    plan_spec = getattr(args, "chaos_plan", None)
    if plan_spec:
        from repro.chaos import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.parse(
            plan_spec, seed=getattr(args, "chaos_seed", 0) or 0
        ))
    cache = None
    if not getattr(args, "no_cache", False):
        tier = None
        cache_url = getattr(args, "cache_url", None)
        if cache_url:
            from repro.sim.cache import HttpCacheTier

            tier = HttpCacheTier(cache_url)
        cache = RunCache(getattr(args, "cache_dir", None),
                         injector=injector, tier=tier)
    return ReproServer(
        host=args.host, port=args.port,
        queue_depth=args.queue_depth, workers=args.workers,
        sim_jobs=args.jobs, cache=cache,
        retry_after=args.retry_after,
        injector=injector,
    )
