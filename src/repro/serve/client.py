"""Stdlib client for the serve API (used by the CLI and the load bench).

Synchronous and ``http.client``-based on purpose: the load generator
drives it from plain threads, and `repro submit` needs no event loop.
One connection per request matches the server's ``Connection: close``
discipline.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


class ServeError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class RunResponse:
    """One ``/v1/run`` answer plus its ``X-Repro-*`` provenance."""

    status: int
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def json(self) -> Any:
        return json.loads(self.body.decode())

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def coalesced(self) -> bool:
        return self.headers.get("x-repro-coalesced") == "1"

    @property
    def elapsed_ms(self) -> float:
        return float(self.headers.get("x-repro-elapsed-ms", "nan"))

    @property
    def cells_computed(self) -> int:
        return int(self.headers.get("x-repro-cells-computed", "0"))

    @property
    def cells_cached(self) -> int:
        return int(self.headers.get("x-repro-cells-cached", "0"))

    @property
    def sweep_id(self) -> str:
        return self.headers.get("x-repro-sweep", "")

    @property
    def sweep_points(self) -> int:
        return int(self.headers.get("x-repro-sweep-points", "0"))

    @property
    def sweep_cells(self) -> int:
        return int(self.headers.get("x-repro-sweep-cells", "0"))


class ServeClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8377,
                 timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> RunResponse:
        conn = self._connect()
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"}
                         if body else {})
            resp = conn.getresponse()
            return RunResponse(
                status=resp.status, body=resp.read(),
                headers={k.lower(): v for k, v in resp.getheaders()},
            )
        finally:
            conn.close()

    # -- endpoints ----------------------------------------------------

    def healthz(self) -> dict:
        resp = self._request("GET", "/healthz")
        if not resp.ok:
            raise ServeError(resp.status, resp.body.decode(errors="replace"))
        return resp.json

    def experiments(self) -> dict:
        resp = self._request("GET", "/v1/experiments")
        if not resp.ok:
            raise ServeError(resp.status, resp.body.decode(errors="replace"))
        return resp.json

    def metrics_text(self) -> str:
        resp = self._request("GET", "/metrics")
        if not resp.ok:
            raise ServeError(resp.status, resp.body.decode(errors="replace"))
        return resp.body.decode()

    def metric(self, name: str, label: str | None = None) -> float:
        """One sample value scraped off ``/metrics`` (0.0 if absent).

        ``label`` matches the full ``{...}`` segment content, e.g.
        ``'status="done"'``.
        """
        wanted_label = label
        for line in self.metrics_text().splitlines():
            if line.startswith("#") or not line.strip():
                continue
            sample, _, value = line.rpartition(" ")
            sample_name, _, sample_label = sample.partition("{")
            sample_label = sample_label.rstrip("}")
            if sample_name != name:
                continue
            if wanted_label is not None and sample_label != wanted_label:
                continue
            try:
                return float(value)
            except ValueError:
                continue
        return 0.0

    def run(self, experiment: str, scale: str = "quick",
            params: dict | None = None) -> RunResponse:
        """Submit one run and wait for the result.

        Returns the response whatever the status — callers inspect
        ``resp.ok`` / ``resp.status`` (503 carries ``retry-after``).
        """
        payload: dict = {"experiment": experiment, "scale": scale}
        if params:
            payload["params"] = params
        return self._request("POST", "/v1/run", payload)

    def run_with_retries(self, experiment: str, scale: str = "quick",
                         params: dict | None = None, attempts: int = 5,
                         backoff: float = 0.05,
                         retry_statuses: tuple[int, ...] = (408, 503),
                         ) -> RunResponse:
        """:meth:`run` with bounded retry on transient failures.

        Retries dropped/reset connections and the retryable statuses
        (408 request timeout, 503 admission control) with exponential
        backoff; any other response returns immediately.  Raises
        :class:`ServeError` when the budget is exhausted — the caller
        always gets either a definitive response or a clear error.
        """
        last_error: str = "no attempts made"
        for attempt in range(attempts):
            try:
                resp = self.run(experiment, scale, params)
            except (ConnectionError, OSError,
                    http.client.HTTPException) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                if resp.status not in retry_statuses:
                    return resp
                last_error = f"HTTP {resp.status}"
            if attempt + 1 < attempts:
                time.sleep(backoff * (2 ** attempt))
        raise ServeError(
            0, f"gave up after {attempts} attempt(s): {last_error}"
        )

    def sweep(self, spec: dict) -> RunResponse:
        """Submit one grid sweep and wait for the frontier result."""
        return self._request("POST", "/v1/sweep", spec)

    def sweep_with_retries(self, spec: dict, attempts: int = 5,
                           backoff: float = 0.05,
                           retry_statuses: tuple[int, ...] = (408, 503),
                           ) -> RunResponse:
        """:meth:`sweep` with the same retry discipline as runs."""
        last_error: str = "no attempts made"
        for attempt in range(attempts):
            try:
                resp = self.sweep(spec)
            except (ConnectionError, OSError,
                    http.client.HTTPException) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                if resp.status not in retry_statuses:
                    return resp
                last_error = f"HTTP {resp.status}"
            if attempt + 1 < attempts:
                time.sleep(backoff * (2 ** attempt))
        raise ServeError(
            0, f"gave up after {attempts} attempt(s): {last_error}"
        )

    def sweep_status(self, sweep_id: str) -> dict:
        resp = self._request("GET", f"/v1/sweep/{sweep_id}")
        if not resp.ok:
            raise ServeError(resp.status, resp.body.decode(errors="replace"))
        return resp.json

    def sweep_cancel(self, sweep_id: str) -> dict:
        resp = self._request("POST", f"/v1/sweep/{sweep_id}/cancel")
        if not resp.ok:
            raise ServeError(resp.status, resp.body.decode(errors="replace"))
        return resp.json

    def iter_sweep_stream(self, spec: dict,
                          on_event: Callable[[dict], None] | None = None
                          ) -> Iterator[dict]:
        """``POST /v1/sweep?stream=1``: yields NDJSON events in order.

        The per-cell events carry ``event: "sweep-cell"`` with each
        point's metrics; the final ``result`` event carries the full
        frontier payload under ``"data"``.
        """
        conn = self._connect()
        try:
            conn.request(
                "POST", "/v1/sweep?stream=1",
                body=json.dumps(spec).encode(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            if resp.status != 200:
                body = resp.read().decode(errors="replace")
                raise ServeError(
                    resp.status, body,
                    retry_after=_retry_after(resp.getheader("Retry-After")),
                )
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode())
                if on_event is not None:
                    on_event(event)
                yield event
        finally:
            conn.close()

    def run_stream(self, experiment: str, scale: str = "quick",
                   params: dict | None = None,
                   on_event: Callable[[dict], None] | None = None
                   ) -> list[dict]:
        """Submit with ``?stream=1``; returns every NDJSON event in order.

        The final ``result`` event carries the full payload under
        ``"data"``.  ``on_event`` (if given) fires per event as it
        arrives.
        """
        return list(self.iter_stream(experiment, scale, params, on_event))

    def iter_stream(self, experiment: str, scale: str = "quick",
                    params: dict | None = None,
                    on_event: Callable[[dict], None] | None = None
                    ) -> Iterator[dict]:
        payload: dict = {"experiment": experiment, "scale": scale}
        if params:
            payload["params"] = params
        conn = self._connect()
        try:
            conn.request(
                "POST", "/v1/run?stream=1", body=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            if resp.status != 200:
                body = resp.read().decode(errors="replace")
                raise ServeError(
                    resp.status, body,
                    retry_after=_retry_after(resp.getheader("Retry-After")),
                )
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode())
                if on_event is not None:
                    on_event(event)
                yield event
        finally:
            conn.close()


def _retry_after(value: str | None) -> float | None:
    try:
        return float(value) if value is not None else None
    except ValueError:  # pragma: no cover - non-numeric date form
        return None
