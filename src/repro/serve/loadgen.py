"""Load generator for the serve layer: ``python -m repro bench-serve``.

Boots a real server (ephemeral port, scratch cache) in a background
thread, then drives it with N concurrent stdlib clients through two
phases:

1. *cold / coalescing* — N identical requests land while the cache is
   empty.  They must coalesce onto **one** executor invocation
   (verified via the ``/metrics`` coalesced-join and job counters) and
   every client must receive byte-identical bodies.
2. *warm* — the same request repeated for several rounds against the
   now-populated cache, measuring per-request latency (p50/p95/p99)
   and throughput.
3. *sweep* — every client streams an **overlapping** grid through
   ``POST /v1/sweep?stream=1``: all grids share a core (policy,
   workload) block and differ in one rotating extra policy, so most
   of the fleet's point-cell references must be served by dedup +
   coalescing + cache rather than computed.  The phase reports the
   dedup ratio and the stream-completion p50/p95.
4. *tier* — the largest entry the earlier phases cached is pulled
   back through the ``/v1/cache`` federation endpoints as a new peer
   (framed RPT1 verbatim) and as an Accept-less old peer (transparent
   raw-pickle transcode), recording the bytes each format put on the
   wire against the entry's raw-pickle equivalent.

The report (``BENCH_serve.json``) carries the headline numbers CI
gates on: zero failed requests, coalescing effectiveness,
warm-over-cold speedup, and sweep dedup.
"""

from __future__ import annotations

import asyncio
import math
import platform
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.sim.cache import RunCache

#: Defaults matching the acceptance gate: 8 concurrent identical
#: quick-scale requests -> 1 executor invocation.
DEFAULT_CLIENTS = 8
DEFAULT_WARM_ROUNDS = 5
DEFAULT_EXPERIMENT = "fig11"


class ServerThread:
    """A live ``ReproServer`` on its own event loop + thread."""

    def __init__(self, **server_kwargs):
        self._ready = threading.Event()
        self._server: ReproServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, kwargs=server_kwargs,
            name="repro-serve", daemon=True,
        )

    def _main(self, **server_kwargs) -> None:
        async def amain():
            server = ReproServer(port=0, **server_kwargs)
            await server.start()
            self._server = server
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        try:
            asyncio.run(amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._error = exc
            self._ready.set()

    def __enter__(self) -> ReproServer:
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._server is None:
            raise RuntimeError(
                f"server failed to start: {self._error!r}"
            ) from self._error
        return self._server

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._server is not None:
            asyncio.run_coroutine_threadsafe(
                self._server.stop(), self._loop
            )
        self._thread.join(timeout=30)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of raw observations (exact, not bucketed)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _latency_summary(latencies_s: list[float]) -> dict:
    return {
        "requests": len(latencies_s),
        "p50_ms": round(percentile(latencies_s, 0.50) * 1000, 3),
        "p95_ms": round(percentile(latencies_s, 0.95) * 1000, 3),
        "p99_ms": round(percentile(latencies_s, 0.99) * 1000, 3),
        "mean_ms": round(
            sum(latencies_s) / len(latencies_s) * 1000, 3
        ) if latencies_s else 0.0,
    }


def _fire(client: ServeClient, experiment: str, scale: str) -> dict:
    started = time.perf_counter()
    resp = client.run(experiment, scale=scale)
    return {
        "status": resp.status,
        "latency_s": time.perf_counter() - started,
        "body": resp.body,
        "coalesced": resp.coalesced,
    }


#: Extra policies rotated across sweep-phase clients: every grid
#: shares the (thp, ca) core, so overlap — not luck — drives dedup.
SWEEP_EXTRA_POLICIES = ("eager", "ingens")
SWEEP_TRACE_LEN = 10_000


def _sweep_spec_for(i: int, scale_name: str) -> dict:
    return {
        "policies": ["thp", "ca",
                     SWEEP_EXTRA_POLICIES[i % len(SWEEP_EXTRA_POLICIES)]],
        "workloads": ["svm"],
        "scale": scale_name,
        "trace_len": SWEEP_TRACE_LEN,
    }


def _tier_phase(server, cache_root: Path) -> dict:
    """Pull the largest cached entry over the ``/v1/cache`` tier both
    ways; returns the bytes-on-wire comparison."""
    import http.client
    import pickle

    from repro.sim import transport
    from repro.sim.cache import HttpCacheTier, RunCache

    entries = sorted(
        cache_root.glob("*/*.pkl"),
        key=lambda p: p.stat().st_size, reverse=True,
    )
    if not entries:
        return {"entries": 0}
    key = entries[0].stem

    tier = HttpCacheTier(f"http://127.0.0.1:{server.port}")
    blob = tier.get(key)
    if blob is None:
        return {"entries": len(entries), "error": "tier get missed"}
    value = RunCache.decode_blob(blob)
    raw_equiv = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    # An Accept-less GET: what an old peer would pull for the same key.
    conn = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=30
    )
    try:
        conn.request("GET", f"/v1/cache/{key}")
        resp = conn.getresponse()
        old_body = resp.read()
        old_format = resp.getheader("X-Repro-Blob-Format")
    finally:
        conn.close()

    return {
        "entries": len(entries),
        "key": key,
        "blob_format": "rpt1" if transport.is_framed(blob) else "raw",
        "bytes_on_wire": len(blob),
        "raw_equivalent_bytes": raw_equiv,
        "wire_reduction": round(raw_equiv / max(len(blob), 1), 2),
        "old_peer_bytes": len(old_body),
        "old_peer_format": old_format,
        "client_bytes_received": tier.bytes_received,
    }


def _fire_sweep(client: ServeClient, spec: dict) -> dict:
    """Stream one sweep; returns latency + stream shape + result body."""
    started = time.perf_counter()
    cells = 0
    result = None
    error = None
    try:
        for event in client.iter_sweep_stream(spec):
            if event.get("event") == "sweep-cell":
                cells += 1
            elif event.get("event") == "result":
                result = event["data"]
    except Exception as exc:  # noqa: BLE001 - report, don't abort the bench
        error = f"{type(exc).__name__}: {exc}"
    import json as _json

    return {
        "latency_s": time.perf_counter() - started,
        "cell_events": cells,
        "points": result["points"] if result else 0,
        "frontier_size": result["frontier_size"] if result else 0,
        "body": _json.dumps(
            result, sort_keys=True, separators=(",", ":")
        ).encode() if result else b"",
        "error": error,
    }


def run_serve_bench(
    scale_name: str = "quick",
    experiment: str = DEFAULT_EXPERIMENT,
    clients: int = DEFAULT_CLIENTS,
    warm_rounds: int = DEFAULT_WARM_ROUNDS,
    cache_root: str | Path | None = None,
    workers: int = 2,
) -> dict:
    """Run both phases against a private server; returns the report."""
    own_tmp = cache_root is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
        if own_tmp else Path(cache_root)
    )
    started = time.time()
    try:
        RunCache(root).clear()
        with ServerThread(
            cache=RunCache(root), workers=workers,
            queue_depth=max(16, clients * 2),
        ) as server:
            client = ServeClient(port=server.port)
            client.healthz()  # fail fast if the socket is dead

            # Phase 1: cold, all clients at once -> one executor run.
            with ThreadPoolExecutor(max_workers=clients) as pool:
                cold = list(pool.map(
                    lambda _: _fire(client, experiment, scale_name),
                    range(clients),
                ))
            cold_bodies = {r["body"] for r in cold}
            cold_failed = sum(1 for r in cold if r["status"] != 200)
            jobs_done = client.metric(
                "repro_jobs_total", label='status="done"'
            )
            coalesced_joins = client.metric("repro_coalesced_joins_total")
            cells_computed = client.metric("repro_cells_computed")

            # Phase 2: warm, each client loops rounds sequentially.
            def warm_client(_i: int) -> list[dict]:
                return [
                    _fire(client, experiment, scale_name)
                    for _ in range(warm_rounds)
                ]

            warm_started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                warm = [
                    r for rs in pool.map(warm_client, range(clients))
                    for r in rs
                ]
            warm_wall = time.perf_counter() - warm_started
            warm_failed = sum(1 for r in warm if r["status"] != 200)
            warm_bodies = {r["body"] for r in warm}

            # Phase 3: overlapping sweep grids from every client.
            sweep_started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                sweeps = list(pool.map(
                    lambda i: _fire_sweep(
                        client, _sweep_spec_for(i, scale_name)
                    ),
                    range(clients),
                ))
            sweep_wall = time.perf_counter() - sweep_started
            sweep_failed = sum(1 for r in sweeps if r["error"] or not r["body"])
            sweep_points = client.metric("repro_sweep_points_total")
            sweep_computed = client.metric(
                "repro_sweep_cells_computed_total"
            )
            # Distinct specs coalesce and repeat via the cache, so the
            # denominator is every point-cell reference the fleet
            # *would* have cost without sharing (2 cells per point).
            sweep_refs = 2 * sum(r["points"] for r in sweeps)
            sweep_bodies_by_spec: dict[str, set] = {}
            for i, r in enumerate(sweeps):
                spec_key = str(sorted(_sweep_spec_for(i, scale_name).items()))
                sweep_bodies_by_spec.setdefault(spec_key, set()).add(r["body"])

            # Phase 4: federation-tier bytes on the wire.
            tier = _tier_phase(server, root)

            metrics_snapshot = {
                "jobs_done": client.metric(
                    "repro_jobs_total", label='status="done"'
                ),
                "tier_bytes_get": client.metric(
                    "repro_cache_tier_bytes_total",
                    label='direction="get"',
                ),
                "tier_bytes_put": client.metric(
                    "repro_cache_tier_bytes_total",
                    label='direction="put"',
                ),
                "jobs_failed": client.metric(
                    "repro_jobs_total", label='status="failed"'
                ),
                "coalesced_joins": client.metric(
                    "repro_coalesced_joins_total"
                ),
                "queue_rejected": client.metric(
                    "repro_queue_rejected_total"
                ),
                "cells_computed": client.metric("repro_cells_computed"),
                "cells_cached": client.metric("repro_cells_cached"),
                "cache_hit_ratio": client.metric("repro_cache_hit_ratio"),
                "sweeps_done": client.metric(
                    "repro_sweeps_total", label='status="done"'
                ),
                "sweep_coalesced_or_cached": sweep_refs - sweep_computed,
            }
    finally:
        if own_tmp:
            shutil.rmtree(root, ignore_errors=True)

    cold_lat = [r["latency_s"] for r in cold]
    warm_lat = [r["latency_s"] for r in warm]
    sweep_lat = [r["latency_s"] for r in sweeps]
    cold_p50 = percentile(cold_lat, 0.50)
    warm_p50 = percentile(warm_lat, 0.50)
    sweep_dedup_ratio = (
        round(1.0 - sweep_computed / sweep_refs, 4) if sweep_refs else 0.0
    )
    sweep_bodies_identical = all(
        len(bodies) == 1 for bodies in sweep_bodies_by_spec.values()
    )
    coalescing_ok = (
        cold_failed == 0
        and jobs_done == 1
        and coalesced_joins == clients - 1
        and len(cold_bodies) == 1
    )
    return {
        "bench": "serve",
        "scale": scale_name,
        "experiment": experiment,
        "clients": clients,
        "warm_rounds": warm_rounds,
        "workers": workers,
        "python": platform.python_version(),
        "cold": {
            **_latency_summary(cold_lat),
            "wall_s": round(max(cold_lat), 3),
            "failed": cold_failed,
            "unique_bodies": len(cold_bodies),
            "executor_jobs": jobs_done,
            "coalesced_joins": coalesced_joins,
            "cells_computed": cells_computed,
        },
        "warm": {
            **_latency_summary(warm_lat),
            "wall_s": round(warm_wall, 3),
            "failed": warm_failed,
            "unique_bodies": len(warm_bodies),
            "throughput_rps": round(len(warm) / warm_wall, 1)
            if warm_wall > 0 else 0.0,
        },
        "sweep": {
            **_latency_summary(sweep_lat),
            "wall_s": round(sweep_wall, 3),
            "failed": sweep_failed,
            "distinct_specs": len(sweep_bodies_by_spec),
            "points_total": sum(r["points"] for r in sweeps),
            "cell_refs": sweep_refs,
            "cells_computed": sweep_computed,
            "dedup_ratio": sweep_dedup_ratio,
            "bodies_identical_per_spec": sweep_bodies_identical,
            "frontier_nonempty": all(
                r["frontier_size"] > 0 for r in sweeps if r["body"]
            ),
            "metrics_points_total": sweep_points,
        },
        "tier": tier,
        "metrics": metrics_snapshot,
        # Headline numbers the CI smoke gates on.
        "coalescing_ok": coalescing_ok,
        "bodies_identical": len(cold_bodies | warm_bodies) == 1,
        "sweep_ok": (
            sweep_failed == 0 and sweep_bodies_identical
            and sweep_dedup_ratio > 0.5
        ),
        "sweep_dedup_ratio": sweep_dedup_ratio,
        "sweep_stream_p50_ms": round(
            percentile(sweep_lat, 0.50) * 1000, 3
        ),
        "sweep_stream_p95_ms": round(
            percentile(sweep_lat, 0.95) * 1000, 3
        ),
        "failed_requests": cold_failed + warm_failed + sweep_failed,
        "warm_p50_ms": round(warm_p50 * 1000, 3),
        "warm_over_cold": round(cold_p50 / warm_p50, 2)
        if warm_p50 > 0 else 0.0,
        "wall_seconds": round(time.time() - started, 1),
    }
