"""Prometheus-style metrics registry for the serving layer.

Text exposition only (the ``0.0.4`` format every Prometheus scraper
speaks), stdlib only, and deliberately tiny: counters, gauges (value-
or callable-backed), and a histogram wrapping
:class:`repro.metrics.profiling.Histogram`.  Metrics support at most
one label — enough for ``{endpoint=...}`` / ``{code=...}`` breakdowns
without growing a label-set engine.

All mutation happens on the server's single event-loop thread, so no
locking is needed; the load generator and tests read via ``/metrics``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.metrics.profiling import DEFAULT_BUCKETS, Histogram


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats as repr."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


class Metric:
    """Base: a named metric with HELP/TYPE metadata and one label."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label: str = ""):
        self.name = name
        self.help = help
        self.label = label

    def samples(self) -> list[tuple[str, str, float]]:
        """``(suffix, label_value, value)`` rows; overridden."""
        raise NotImplementedError

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, label_value, value in self.samples():
            labels = (
                f'{{{self.label}="{_escape(label_value)}"}}'
                if self.label and label_value != ""
                else ""
            )
            lines.append(f"{self.name}{suffix}{labels} {_fmt(value)}")
        return "\n".join(lines)


class Counter(Metric):
    """Monotonic counter, optionally broken out by one label value."""

    kind = "counter"

    def __init__(self, name: str, help: str, label: str = ""):
        super().__init__(name, help, label)
        self.values: dict[str, float] = {}

    def inc(self, label_value: str = "", n: float = 1) -> None:
        self.values[label_value] = self.values.get(label_value, 0) + n

    def get(self, label_value: str = "") -> float:
        return self.values.get(label_value, 0)

    def total(self) -> float:
        return sum(self.values.values())

    def samples(self) -> list[tuple[str, str, float]]:
        if not self.values:
            return [("", "", 0)]
        return [("", lv, v) for lv, v in sorted(self.values.items())]


class FuncCounter(Metric):
    """Counter whose labelled values are read from a callable at scrape
    time (e.g. the chaos injector's per-site fault counts)."""

    kind = "counter"

    def __init__(self, name: str, help: str, label: str,
                 fn: Callable[[], dict[str, float]]):
        super().__init__(name, help, label)
        self.fn = fn

    def samples(self) -> list[tuple[str, str, float]]:
        values = self.fn() or {}
        if not values:
            return [("", "", 0)]
        return [("", lv, float(v)) for lv, v in sorted(values.items())]


class Gauge(Metric):
    """Point-in-time value: set explicitly or computed at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 fn: Callable[[], float] | None = None):
        super().__init__(name, help)
        self.fn = fn
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def get(self) -> float:
        return float(self.fn()) if self.fn is not None else self.value

    def samples(self) -> list[tuple[str, str, float]]:
        return [("", "", self.get())]


class HistogramMetric(Metric):
    """Cumulative-bucket histogram in Prometheus exposition shape."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.hist = Histogram(buckets)

    def observe(self, value: float) -> None:
        self.hist.observe(value)

    def quantile(self, q: float) -> float:
        return self.hist.quantile(q)

    def samples(self) -> list[tuple[str, str, float]]:
        raise NotImplementedError  # histogram renders its own rows

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for bound, cum in self.hist.cumulative():
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f"{self.name}_sum {_fmt(round(self.hist.total, 6))}")
        lines.append(f"{self.name}_count {self.hist.count}")
        return "\n".join(lines)


class Registry:
    """Orders metrics and renders the full exposition page."""

    def __init__(self) -> None:
        self.metrics: dict[str, Metric] = {}

    def add(self, metric: Metric) -> Metric:
        if metric.name in self.metrics:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self.metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, label: str = "") -> Counter:
        return self.add(Counter(name, help, label))

    def gauge(self, name: str, help: str,
              fn: Callable[[], float] | None = None) -> Gauge:
        return self.add(Gauge(name, help, fn))

    def func_counter(self, name: str, help: str, label: str,
                     fn: Callable[[], dict[str, float]]) -> FuncCounter:
        return self.add(FuncCounter(name, help, label, fn))

    def histogram(self, name: str, help: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  ) -> HistogramMetric:
        return self.add(HistogramMetric(name, help, buckets))

    def render(self) -> str:
        return "\n".join(m.render() for m in self.metrics.values()) + "\n"
