"""`repro.serve`: a long-lived asyncio simulation service.

The serving layer turns the experiment registry into a JSON-over-HTTP
API backed by the run-cell orchestrator: a bounded job queue with
admission control (:mod:`repro.serve.scheduler`), in-flight request
coalescing keyed on the cells' content address, NDJSON progress
streaming, and a Prometheus-style ``/metrics`` endpoint
(:mod:`repro.serve.metrics`).  ``python -m repro serve`` starts it;
:mod:`repro.serve.client` talks to it; :mod:`repro.serve.loadgen`
load-tests it (``python -m repro bench-serve``).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import Job, QueueFull, Scheduler
from repro.serve.server import ReproServer

__all__ = [
    "Job",
    "QueueFull",
    "ReproServer",
    "Scheduler",
    "ServeClient",
    "ServeError",
]
