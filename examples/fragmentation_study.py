#!/usr/bin/env python3
"""Fragmentation study: how allocation policies age a machine.

Walks through the paper's three fragmentation stories on one scaled
machine:

1. **Harvesting** — fragment memory with the hog microbenchmark, then
   compare how much contiguity each allocator can still extract
   (Fig. 8's mechanism at one pressure point);
2. **Restraint** — run a benchmark batch to completion under default
   vs CA paging and inspect the free-block size distribution the
   machine is left with (Fig. 9);
3. **Aging** — run PageRank repeatedly while long-lived files and
   daemon memory accumulate, and watch eager paging's contiguity decay
   while CA sustains it (Fig. 1b).

Run:  python examples/fragmentation_study.py
"""

from repro.experiments import common, fig1, fig9
from repro.sim.config import QUICK_SCALE
from repro.sim.runner import RunOptions, run_native


def harvesting(scale) -> None:
    print("1) harvesting unaligned contiguity on a fragmented machine")
    node_pages = (sum(scale.node_pages()),)
    for policy in ("thp", "eager", "ca"):
        machine = common.native_machine(policy, scale, node_pages=node_pages)
        machine.hog(0.4)  # pin 40% of memory at >2MB granularity
        workload = common.workload("xsbench", scale)
        r = run_native(machine, workload, RunOptions(sample_every=None))
        print(f"   {policy:6}: maps99={r.final.mappings_99:4}  "
              f"cov32={r.final.coverage_32:6.1%}")
    print()


def restraint(scale) -> None:
    print("2) free-memory state after a benchmark batch (Fig. 9)")
    result = fig9.run(scale=scale)
    for policy, hist in result.histograms.items():
        print(f"   {policy:6}: free memory in biggest bucket "
              f"{hist.fraction('huge'):6.1%}, largest free run "
              f"{hist.largest_run_pages()} pages")
    print()


def aging(scale) -> None:
    print("3) consecutive PageRank runs on an aging machine (Fig. 1b)")
    result = fig1.run_fig1b(scale=scale, runs=8)
    for policy, series in result.coverage_by_run.items():
        trend = " -> ".join(f"{v:.0%}" for v in series[:: max(1, len(series) // 4)])
        print(f"   {policy:6}: {trend}  (decay {result.decay(policy):+.0%})")
    print()


def main() -> None:
    scale = QUICK_SCALE
    harvesting(scale)
    restraint(scale)
    aging(scale)
    print("CA paging both harvests contiguity from fragmented memory and")
    print("delays fragmentation in the first place; pre-allocation does")
    print("neither once the machine has aged.")


if __name__ == "__main__":
    main()
