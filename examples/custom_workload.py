#!/usr/bin/env python3
"""Bring your own workload: define, run, and evaluate a custom app.

Shows the full public API surface a downstream user needs:

- subclass :class:`repro.workloads.base.Workload` with your own VMA
  layout and access pattern,
- run it natively and virtualized,
- measure contiguity, fault behaviour and translation overhead,
- try an ablation (CA paging with a different placement policy).

Run:  python examples/custom_workload.py
"""

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.sim.config import HardwareConfig, QUICK_SCALE
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.workloads.base import FilePlan, TraceSite, VmaPlan, Workload


class KeyValueStore(Workload):
    """A memcached-ish store: big hash table + slab arena + AOF log."""

    name = "kvstore"
    paper_gb = 48.0
    threads = 4
    instructions_per_access = 35.0  # hash + bucket walk per lookup

    def _build_vma_plans(self):
        return [
            # Hash index: uniform random lookups.
            VmaPlan("index", self.scaled(self.paper_gb * 0.25)),
            # Value slabs: zipf-skewed (hot keys).
            VmaPlan("slabs", self.scaled(self.paper_gb * 0.70), 0.9),
            # Connection buffers.
            VmaPlan("buffers", self.scaled(self.paper_gb * 0.05)),
        ]

    def _build_file_plans(self):
        # Append-only log, read back at startup through the page cache.
        return [FilePlan("aof", self.scaled(self.paper_gb * 0.2))]

    def trace_sites(self):
        return [
            TraceSite(pc=0xA00, vma=0, pattern="uniform", weight=0.25),
            TraceSite(pc=0xA10, vma=1, pattern="zipf", weight=0.60, zipf_a=1.3),
            TraceSite(pc=0xA20, vma=2, pattern="seq", weight=0.15),
        ]


def main() -> None:
    scale = QUICK_SCALE
    workload = KeyValueStore(scale)
    hw = HardwareConfig()

    print(f"custom workload: {workload.name}, "
          f"{workload.footprint_pages} pages, {workload.threads} threads\n")

    print("native, per placement policy:")
    for policy, kwargs in (
        ("thp", {}),
        ("ca", {}),
        ("ca", {"placement": "best_fit"}),  # ablation
    ):
        machine = build_machine(policy, common.system_config(scale), **kwargs)
        r = run_native(machine, workload, RunOptions(sample_every=None,
                                                     exit_after=False))
        view = TranslationView.native(r.process)
        mmu = MmuSimulator(view, hw).run(
            workload.trace(100_000), r.vma_start_vpns, workload=workload
        )
        label = policy + (f"[{kwargs['placement']}]" if kwargs else "")
        print(f"  {label:15} maps99={r.final.mappings_99:4} "
              f"miss={mmu.miss_rate:7.3%} "
              f"overhead={mmu.overheads()['paging']:7.2%}")
        machine.kernel.exit_process(r.process)

    print("\nvirtualized (CA+CA) with SpOT:")
    vm = common.virtual_machine("ca", "ca", scale)
    r = run_virtualized(vm, workload, RunOptions(sample_every=None,
                                                 exit_after=False))
    view = TranslationView.virtualized(vm, r.process)
    mmu = MmuSimulator(view, hw).run(
        workload.trace(100_000), r.vma_start_vpns, workload=workload
    )
    over = mmu.overheads()
    print(f"  nested THP overhead {over['paging']:.2%} -> "
          f"SpOT {over['spot']:.3%} "
          f"({mmu.spot_breakdown()['correct']:.1%} predicted correctly)")


if __name__ == "__main__":
    main()
