#!/usr/bin/env python3
"""Quickstart: CA paging vs default THP on one machine.

Builds two aged machines — one running stock THP placement, one running
contiguity-aware paging — runs the same synthetic PageRank workload on
each, and compares how physically contiguous the footprint ended up and
what that means for the TLB.

Run:  python examples/quickstart.py
"""

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.sim.config import HardwareConfig, QUICK_SCALE
from repro.sim.runner import RunOptions, run_native
from repro.units import human_pages


def main() -> None:
    scale = QUICK_SCALE
    workload = common.workload("pagerank", scale)
    print(f"workload: {workload.name}, footprint "
          f"{human_pages(workload.footprint_pages)} (scaled from "
          f"{workload.paper_gb:.0f} paper-GB)\n")

    for policy in ("thp", "ca"):
        machine = common.native_machine(policy, scale)
        result = run_native(
            machine, workload, RunOptions(sample_every=None, exit_after=False)
        )

        print(f"=== {policy} ===")
        print(f"  contiguous mappings        : {result.final.total_runs}")
        print(f"  mappings covering 99%      : {result.final.mappings_99}")
        print(f"  largest mapping            : "
              f"{human_pages(max(result.run_sizes))}")
        print(f"  page faults                : {result.faults.total_faults} "
              f"(p99 {result.faults.p99_latency_us:.0f} us)")

        # Feed a memory-access trace through the TLB simulator.
        view = TranslationView.native(result.process)
        sim = MmuSimulator(view, HardwareConfig())
        mmu = sim.run(workload.trace(100_000), result.vma_start_vpns,
                      workload=workload)
        overheads = mmu.overheads()
        print(f"  TLB miss rate              : {mmu.miss_rate:.3%}")
        print(f"  translation overhead (THP) : {overheads['paging']:.2%}")
        print(f"  ... with SpOT attached     : {overheads['spot']:.3%} "
              f"({mmu.spot_breakdown()['correct']:.0%} predicted)\n")
        machine.kernel.exit_process(result.process)

    print("Note that plain TLB behaviour is identical: contiguity does not")
    print("change miss rates.  The payoff appears when contiguity-aware")
    print("hardware (here SpOT's offset predictor) sits on the miss path -")
    print("it can hide almost every walk on the CA state, but far fewer on")
    print("the scattered THP state.  See virtualized_spot.py for the full")
    print("nested-paging story where the stakes are ~2.4x higher.")


if __name__ == "__main__":
    main()
