#!/usr/bin/env python3
"""Virtualized execution: nested paging cost and the SpOT fix.

Reproduces the paper's headline flow on one workload:

1. run hashjoin in a VM with default THP in guest and host — measure
   the nested-paging translation overhead;
2. run it in a VM with CA paging in both dimensions — inspect the 2D
   (gVA→hPA) contiguity the two independent CA instances created;
3. attach the SpOT predictor to the TLB-miss path and show how much of
   the nested-walk cost speculation hides, versus vRMM and Direct
   Segments emulated on the same state.

Run:  python examples/virtualized_spot.py
"""

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.hw.walk import WalkLatencyModel
from repro.sim.config import HardwareConfig, QUICK_SCALE
from repro.sim.runner import RunOptions, run_virtualized
from repro.virt.introspect import two_d_runs

WORKLOAD = "hashjoin"


def measure(vm, workload, hw, costs):
    result = run_virtualized(
        vm, workload, RunOptions(sample_every=None, exit_after=False)
    )
    runs = two_d_runs(vm, result.process)
    view = TranslationView.virtualized(vm, result.process)
    sim = MmuSimulator(view, hw)
    mmu = sim.run(workload.trace(150_000), result.vma_start_vpns,
                  workload=workload)
    vm.guest_exit_process(result.process)
    vm.guest_kernel.drop_caches()
    return result, runs, mmu


def main() -> None:
    scale = QUICK_SCALE
    hw = HardwareConfig()
    costs = WalkLatencyModel().walk_costs()
    workload = common.workload(WORKLOAD, scale)
    print(f"guest workload: {WORKLOAD} "
          f"({workload.footprint_pages} pages scaled footprint)\n")

    print("--- default paging (THP) in guest and host ---")
    vm = common.virtual_machine("thp", "thp", scale)
    _, runs, mmu = measure(vm, workload, hw, costs)
    over = mmu.overheads(costs)
    print(f"  2D contiguous mappings : {len(runs)}")
    print(f"  nested THP overhead    : {over['paging']:.2%}")
    print(f"  (avg nested walk cost  : {costs.nested_thp:.0f} cycles)\n")

    print("--- CA paging in guest and host + emulated hardware ---")
    vm = common.virtual_machine("ca", "ca", scale)
    _, runs, mmu = measure(vm, workload, hw, costs)
    over = mmu.overheads(costs)
    breakdown = mmu.spot_breakdown()
    print(f"  2D contiguous mappings : {len(runs)}")
    print(f"  nested THP overhead    : {over['paging']:.2%}")
    print(f"  SpOT overhead          : {over['spot']:.3%} "
          f"(correct {breakdown['correct']:.1%}, "
          f"mispredict {breakdown['mispredict']:.1%}, "
          f"no-prediction {breakdown['no_prediction']:.1%})")
    print(f"  vRMM overhead          : {over['vrmm']:.3%}")
    print(f"  Direct Segments        : {over['ds']:.3%}")


if __name__ == "__main__":
    main()
